"""Unit tests for bisimulation and minimization."""

from repro.lts import Lts, bisimilar, minimize


def test_identical_ltss_bisimilar():
    assert bisimilar(Lts.cycle("a", ["x", "y"]), Lts.cycle("b", ["x", "y"]))


def test_unrolled_cycle_is_bisimilar():
    one = Lts.cycle("one", ["t"])
    two = Lts.cycle("two", ["t", "t"])
    assert bisimilar(one, two)


def test_different_alphabet_not_bisimilar():
    assert not bisimilar(Lts.cycle("a", ["x"]), Lts.cycle("b", ["y"]))


def test_classic_nondeterminism_distinguishes():
    # a.(b + c) vs a.b + a.c — trace equivalent but not bisimilar.
    branching = Lts.from_triples(
        "branching",
        [("s0", "a", "s1"), ("s1", "b", "s2"), ("s1", "c", "s3")],
        final=["s2", "s3"],
    )
    choosing = Lts.from_triples(
        "choosing",
        [("s0", "a", "s1"), ("s0", "a", "s2"), ("s1", "b", "s3"), ("s2", "c", "s4")],
        final=["s3", "s4"],
    )
    assert not bisimilar(branching, choosing)


def test_final_marking_distinguishes():
    stop = Lts.from_triples("stop", [("s0", "a", "s1")], final=["s1"])
    stuck = Lts.from_triples("stuck", [("s0", "a", "s1")])
    assert not bisimilar(stop, stuck)


def test_unreachable_states_ignored():
    messy = Lts.from_triples(
        "messy", [("s0", "a", "s0"), ("junk", "z", "junk2")], initial="s0"
    )
    clean = Lts.cycle("clean", ["a"])
    assert bisimilar(messy, clean)


def test_minimize_collapses_equivalent_states():
    lts = Lts.cycle("big", ["t", "t", "t"])
    small = minimize(lts)
    assert len(small.states) == 1
    assert bisimilar(lts, small)


def test_minimize_preserves_distinctions():
    lts = Lts.from_triples(
        "two-phase",
        [("s0", "req", "s1"), ("s1", "rep", "s0")],
    )
    small = minimize(lts)
    assert len(small.states) == 2
    assert bisimilar(lts, small)


def test_minimize_keeps_final_flags():
    lts = Lts.sequence("seq", ["a", "b"])
    small = minimize(lts)
    assert len(small.final) == 1
    assert bisimilar(lts, small)

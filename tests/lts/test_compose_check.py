"""Unit tests for LTS composition and analyses."""

import pytest

from repro.errors import LtsError
from repro.lts import (
    TAU,
    Lts,
    check_compatibility,
    compose,
    find_deadlocks,
    interleave,
    is_deadlock_free,
    simulates,
    trace_refines,
    traces,
)


def client() -> Lts:
    return Lts.cycle("client", ["request", "reply"])


def server() -> Lts:
    return Lts.cycle("server", ["request", "reply"])


def bad_server() -> Lts:
    # Protocol bug: expects two requests before each reply.  After the
    # first request the client insists on "reply" while the server insists
    # on "request" — both shared actions, so the pair deadlocks.
    return Lts.cycle("bad-server", ["request", "request", "reply"])


class TestCompose:
    def test_empty_composition_rejected(self):
        with pytest.raises(LtsError):
            compose([])

    def test_single_component_is_pruned_copy(self):
        lts = Lts.sequence("s", ["a"])
        result = compose([lts])
        assert result.alphabet == lts.alphabet

    def test_synchronised_actions_move_together(self):
        composite = compose([client(), server()])
        # Both cycle in lockstep: exactly two reachable states.
        assert len(composite.reachable_states()) == 2
        assert composite.alphabet == frozenset({"request", "reply"})

    def test_unshared_actions_interleave(self):
        a = Lts.cycle("a", ["work_a"])
        b = Lts.cycle("b", ["work_b"])
        composite = compose([a, b])
        initial = composite.initial
        assert composite.enabled(initial) == {"work_a", "work_b"}

    def test_blocked_shared_action_deadlocks(self):
        composite = compose([client(), bad_server()])
        report = find_deadlocks(composite)
        assert not report.deadlock_free
        # Witness: request succeeds, then client wants reply, server wants auth.
        assert report.witness_trace == ["request"]

    def test_tau_interleaves_freely(self):
        a = Lts.from_triples("a", [("s0", TAU, "s1"), ("s1", "go", "s2")],
                             final=["s2"])
        b = Lts.from_triples("b", [("s0", "go", "s1")], final=["s1"])
        composite = compose([a, b])
        assert is_deadlock_free(composite)

    def test_final_requires_all_final(self):
        a = Lts.sequence("a", ["x"])
        b = Lts.sequence("b", ["x"])
        composite = compose([a, b])
        report = find_deadlocks(composite)
        assert report.deadlock_free  # both end final simultaneously

    def test_one_nonfinal_end_is_deadlock(self):
        a = Lts.sequence("a", ["x"])
        b = Lts.from_triples("b", [("s0", "x", "s1")])  # s1 not final
        composite = compose([a, b])
        assert not is_deadlock_free(composite)

    def test_nondeterministic_owner_targets_expand(self):
        a = Lts.from_triples("a", [("s0", "x", "s1"), ("s0", "x", "s2")],
                             final=["s1", "s2"])
        b = Lts.sequence("b", ["x"])
        composite = compose([a, b])
        assert len(composite.reachable_states()) == 3

    def test_three_way_synchronisation(self):
        a = Lts.sequence("a", ["go"])
        b = Lts.sequence("b", ["go"])
        c = Lts.sequence("c", ["go"])
        composite = compose([a, b, c])
        assert composite.transition_count == 1
        assert is_deadlock_free(composite)

    def test_interleave_ignores_shared_names(self):
        a = Lts.cycle("a", ["tick"])
        b = Lts.cycle("b", ["tick"])
        inter = interleave([a, b])
        assert inter.enabled(inter.initial) == {"tick"}
        # Two independent ticks => 4 product states reachable... actually 1x1
        # cycles => 1 state each, product has 1 state with 2 self loops.
        assert len(inter.reachable_states()) == 1
        state = next(iter(inter.reachable_states()))
        assert len(inter.transitions_from(state)) == 2


class TestChecks:
    def test_compatible_pair(self):
        report = check_compatibility([client(), server()])
        assert report.deadlock_free

    def test_incompatible_pair_detected(self):
        report = check_compatibility([client(), bad_server()])
        assert not report.deadlock_free
        assert report.deadlock_states

    def test_explored_states_counted(self):
        report = check_compatibility([client(), server()])
        assert report.explored_states >= 2

    def test_simulates_reflexive(self):
        lts = Lts.cycle("c", ["a", "b"])
        assert simulates(lts, lts)

    def test_simulation_allows_subset_behaviour(self):
        role = Lts.from_triples(
            "role",
            [("s0", "read", "s0"), ("s0", "write", "s0")],
        )
        component = Lts.cycle("comp", ["read"])
        assert simulates(role, component)
        assert not simulates(component, role)

    def test_weak_simulation_absorbs_tau(self):
        concrete = Lts.from_triples(
            "concrete", [("s0", TAU, "s1"), ("s1", "a", "s2")], final=["s2"]
        )
        abstract = Lts.sequence("abstract", ["a"])
        assert simulates(abstract, concrete)

    def test_traces_bounded(self):
        lts = Lts.cycle("c", ["a"])
        assert traces(lts, max_length=3) == {(), ("a",), ("a", "a"), ("a", "a", "a")}

    def test_trace_refinement(self):
        abstract = Lts.from_triples(
            "spec", [("s0", "a", "s0"), ("s0", "b", "s0")]
        )
        concrete = Lts.cycle("impl", ["a", "b"])
        assert trace_refines(abstract, concrete)
        assert not trace_refines(concrete, abstract, max_length=2)

"""Unit and property tests for LTS determinization."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.lts import TAU, Lts, determinize, trace_refines, traces


def test_already_deterministic_is_preserved():
    lts = Lts.cycle("c", ["a", "b"])
    det = determinize(lts)
    assert det.is_deterministic()
    assert traces(det, 4) == traces(lts, 4)


def test_nondeterministic_choice_merged():
    lts = Lts.from_triples("n", [
        ("s0", "a", "s1"),
        ("s0", "a", "s2"),
        ("s1", "b", "s3"),
        ("s2", "c", "s4"),
    ], final=["s3", "s4"])
    det = determinize(lts)
    assert det.is_deterministic()
    # After 'a' the subset {s1,s2} offers both b and c.
    assert traces(det, 2) == traces(lts, 2)


def test_tau_steps_eliminated():
    lts = Lts.from_triples("t", [
        ("s0", TAU, "s1"),
        ("s1", "go", "s2"),
    ], final=["s2"])
    det = determinize(lts)
    assert det.is_deterministic()
    assert TAU not in {a for _s, a, _t in det.all_transitions()}
    assert det.enabled(det.initial) == {"go"}


def test_final_marking_is_existential():
    lts = Lts.from_triples("f", [
        ("s0", "a", "s1"),
        ("s0", "a", "s2"),
    ], final=["s1"])  # only one branch is final
    det = determinize(lts)
    target = next(iter(det.successors(det.initial, "a")))
    assert target in det.final


states = st.sampled_from([f"s{i}" for i in range(4)])
actions = st.sampled_from(["a", "b", TAU])


@st.composite
def random_lts(draw):
    triples = draw(st.lists(st.tuples(states, actions, states),
                            min_size=1, max_size=10))
    lts = Lts("r", initial=triples[0][0])
    for source, action, target in triples:
        lts.add_transition(source, action, target)
    finals = draw(st.lists(st.sampled_from(sorted(lts.states)), max_size=2))
    lts.mark_final(*finals)
    return lts


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_determinize_preserves_traces(lts):
    det = determinize(lts)
    assert det.is_deterministic()
    assert traces(det, 4) == traces(lts, 4)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_determinize_idempotent_up_to_traces(lts):
    once = determinize(lts)
    twice = determinize(once)
    assert traces(once, 4) == traces(twice, 4)
    assert len(twice.states) <= len(once.states)


@given(random_lts())
@settings(max_examples=40, deadline=None)
def test_determinized_mutually_refines_original(lts):
    det = determinize(lts)
    assert trace_refines(det, lts, max_length=4)
    assert trace_refines(lts, det, max_length=4)

"""Unit tests for PID and fuzzy controllers and control loops."""

import pytest

from repro.control import (
    ControlLoop,
    FuzzyController,
    PidController,
    TriangularSet,
    standard_partition,
)
from repro.errors import ControlError
from repro.events import Simulator


class Plant:
    """First-order plant: value moves towards input with inertia."""

    def __init__(self, value=0.0, inertia=0.5):
        self.value = value
        self.inertia = inertia

    def apply(self, control):
        self.value += self.inertia * control


class TestPid:
    def test_output_bounds_validated(self):
        with pytest.raises(ControlError):
            PidController(kp=1.0, output_min=1.0, output_max=0.0)

    def test_proportional_action_direction(self):
        pid = PidController(kp=2.0, setpoint=10.0)
        assert pid.update(0.0, now=0.0) == 20.0  # below setpoint -> positive
        assert pid.update(20.0, now=1.0) < 0     # above setpoint -> negative

    def test_time_backwards_rejected(self):
        pid = PidController(kp=1.0)
        pid.update(0.0, now=5.0)
        with pytest.raises(ControlError):
            pid.update(0.0, now=4.0)

    def test_integral_eliminates_steady_state_error(self):
        # P-only leaves offset on a plant with constant disturbance.
        plant_value = 0.0
        pid = PidController(kp=0.5, ki=0.4, setpoint=10.0)
        for step in range(200):
            control = pid.update(plant_value, now=float(step))
            plant_value += 0.3 * control - 0.5  # disturbance -0.5
        assert plant_value == pytest.approx(10.0, abs=0.2)

    def test_output_clamping(self):
        pid = PidController(kp=100.0, setpoint=10.0,
                            output_min=-1.0, output_max=1.0)
        assert pid.update(0.0, now=0.0) == 1.0
        assert pid.update(100.0, now=1.0) == -1.0

    def test_integral_antiwindup(self):
        pid = PidController(kp=0.0, ki=1.0, setpoint=10.0, integral_limit=5.0)
        for step in range(100):
            pid.update(0.0, now=float(step))
        assert pid.update(0.0, now=100.0) == pytest.approx(5.0)

    def test_derivative_damps(self):
        pid = PidController(kp=0.0, kd=1.0, setpoint=0.0)
        pid.update(0.0, now=0.0)
        # Error rising from 0 to -5 (measurement 5): derivative negative.
        assert pid.update(5.0, now=1.0) == pytest.approx(-5.0)

    def test_reset(self):
        pid = PidController(kp=1.0, ki=1.0, setpoint=1.0)
        pid.update(0.0, now=0.0)
        pid.update(0.0, now=1.0)
        pid.reset()
        assert pid.update(0.0, now=0.0) == pytest.approx(1.0)  # P term only


class TestFuzzySets:
    def test_invalid_triangle_rejected(self):
        with pytest.raises(ControlError):
            TriangularSet("bad", 1.0, 0.0, 2.0)

    def test_membership_shape(self):
        tri = TriangularSet("ZE", -1.0, 0.0, 1.0)
        assert tri.membership(0.0) == 1.0
        assert tri.membership(0.5) == pytest.approx(0.5)
        assert tri.membership(-0.5) == pytest.approx(0.5)
        assert tri.membership(2.0) == 0.0

    def test_shoulder_sets_saturate(self):
        sets = {s.name: s for s in standard_partition(1.0)}
        assert sets["PB"].membership(5.0) == 1.0
        assert sets["NB"].membership(-5.0) == 1.0

    def test_partition_covers_domain(self):
        sets = standard_partition(1.0)
        for x in [-1.0, -0.7, -0.3, 0.0, 0.3, 0.7, 1.0]:
            assert sum(s.membership(x) for s in sets) > 0


class TestFuzzyController:
    def test_scale_validation(self):
        with pytest.raises(ControlError):
            FuzzyController(0.0, error_scale=0.0, delta_scale=1.0,
                            output_scale=1.0)

    def test_unknown_output_term_rejected(self):
        with pytest.raises(ControlError):
            FuzzyController(0.0, 1.0, 1.0, 1.0,
                            rules={("ZE", "ZE"): "XXL"})

    def test_zero_error_zero_output(self):
        fuzzy = FuzzyController(setpoint=5.0, error_scale=5.0,
                                delta_scale=1.0, output_scale=1.0)
        assert fuzzy.update(5.0) == pytest.approx(0.0, abs=1e-9)

    def test_output_sign_follows_error(self):
        fuzzy = FuzzyController(setpoint=10.0, error_scale=10.0,
                                delta_scale=5.0, output_scale=2.0)
        assert fuzzy.update(0.0) > 0    # far below -> push up
        fuzzy.reset()
        assert fuzzy.update(20.0) < 0   # far above -> push down

    def test_converges_on_first_order_plant(self):
        fuzzy = FuzzyController(setpoint=10.0, error_scale=10.0,
                                delta_scale=5.0, output_scale=4.0)
        plant = Plant(value=0.0, inertia=0.8)
        for _ in range(100):
            plant.apply(fuzzy.update(plant.value))
        assert plant.value == pytest.approx(10.0, abs=1.0)

    def test_handles_nonlinear_plant_where_configured_pid_oscillates(self):
        # A plant whose gain jumps 8x past the threshold; the aggressive
        # PID (tuned for the low-gain regime) oscillates, fuzzy's
        # saturating output surface stays bounded.
        def run(controller):
            value = 0.0
            trace = []
            for step in range(120):
                out = controller.update(value, step) if isinstance(
                    controller, PidController) else controller.update(value)
                gain = 0.2 if value < 9.0 else 1.6
                value += gain * out
                trace.append(value)
            return trace

        pid_trace = run(PidController(kp=2.0, setpoint=10.0))
        fuzzy_trace = run(FuzzyController(setpoint=10.0, error_scale=10.0,
                                          delta_scale=5.0, output_scale=4.0))
        pid_tail = pid_trace[-20:]
        fuzzy_tail = fuzzy_trace[-20:]
        pid_spread = max(pid_tail) - min(pid_tail)
        fuzzy_spread = max(fuzzy_tail) - min(fuzzy_tail)
        assert fuzzy_spread < pid_spread


class TestControlLoop:
    def test_period_validated(self):
        sim = Simulator()
        with pytest.raises(ControlError):
            ControlLoop(sim, PidController(kp=1.0), lambda: 0.0,
                        lambda out: None, period=0.0)

    def test_loop_drives_plant_to_setpoint(self):
        sim = Simulator()
        plant = Plant(value=0.0, inertia=0.5)
        pid = PidController(kp=0.8, ki=0.3, setpoint=10.0)
        loop = ControlLoop(sim, pid, lambda: plant.value, plant.apply,
                           period=0.1).start()
        sim.run(until=20.0)
        loop.stop()
        assert plant.value == pytest.approx(10.0, abs=0.5)
        assert loop.settling_time(tolerance=0.5) is not None
        assert loop.steady_state_error() < 0.5

    def test_trace_records_samples(self):
        sim = Simulator()
        plant = Plant()
        loop = ControlLoop(sim, PidController(kp=1.0, setpoint=1.0),
                           lambda: plant.value, plant.apply, period=1.0)
        loop.start()
        sim.run(until=3.5)
        assert len(loop.trace) == 3
        assert loop.trace[0].time == 1.0

    def test_settling_time_none_when_unsettled(self):
        sim = Simulator()
        loop = ControlLoop(sim, PidController(kp=0.0, setpoint=10.0),
                           lambda: 0.0, lambda out: None, period=1.0)
        loop.start()
        sim.run(until=5.0)
        assert loop.settling_time(tolerance=0.1) is None

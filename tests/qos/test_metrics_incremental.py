"""Incremental statistics agree with naive window recomputation.

`MetricSeries` keeps running sums, monotonic min/max deques and a
bisect-maintained sorted view so every statistic is O(1)-ish per query.
These properties drive random record/expire sequences (time steps chosen
so samples expire mid-stream) and check each statistic against a from-
scratch recomputation over the surviving window.
"""

import math

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.qos import MetricSeries


def _naive_window(samples, window):
    """The (time, value) pairs a fresh recomputation would retain."""
    if not samples:
        return []
    cutoff = samples[-1][0] - window
    return [(t, v) for t, v in samples if t > cutoff]


def _naive_percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


steps = st.lists(
    st.tuples(
        st.floats(0.0, 3.0, allow_nan=False),  # time advance
        st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),  # value
    ),
    min_size=1,
    max_size=120,
)


@given(steps, st.floats(0.5, 20.0))
@settings(max_examples=150, deadline=None)
def test_incremental_statistics_match_naive(step_list, window):
    series = MetricSeries("m", window=window)
    samples = []
    now = 0.0
    for advance, value in step_list:
        now += advance
        series.record(value, now)
        samples.append((now, value))

        live = _naive_window(samples, window)
        values = [v for _, v in live]
        assert series.count == len(values)
        assert series.values() == tuple(values)
        assert series.mean() == pytest.approx(
            sum(values) / len(values), rel=1e-9, abs=1e-7
        )
        assert series.minimum() == min(values)
        assert series.maximum() == max(values)
        assert series.last() == values[-1]
        if len(values) >= 2:
            mu = sum(values) / len(values)
            naive_std = math.sqrt(
                sum((v - mu) ** 2 for v in values) / (len(values) - 1)
            )
            # Running sum-of-squares loses ~sqrt(n·ulp(Σv²)) of absolute
            # precision when large values cluster tightly (worst case
            # ~0.02 at |v|≈1e4), which is far below any QoS threshold.
            assert series.stddev() == pytest.approx(naive_std, rel=1e-5, abs=0.05)
        else:
            assert series.stddev() == 0.0
        for q in (0, 25, 50, 95, 99, 100):
            assert series.percentile(q) == pytest.approx(
                _naive_percentile(values, q), rel=1e-9, abs=1e-9
            )


@given(steps, st.floats(0.5, 20.0))
@settings(max_examples=50, deadline=None)
def test_reset_restores_pristine_state(step_list, window):
    series = MetricSeries("m", window=window)
    now = 0.0
    for advance, value in step_list:
        now += advance
        series.record(value, now)
    series.reset()
    assert series.empty
    assert series.mean() == 0.0
    assert series.stddev() == 0.0
    assert series.minimum() == 0.0
    assert series.maximum() == 0.0
    assert series.percentile(95) == 0.0
    # The series accepts fresh samples (even earlier ones) after a reset.
    series.record(7.0, 0.0)
    assert series.mean() == 7.0
    assert series.minimum() == series.maximum() == 7.0


def test_expired_duplicate_values_leave_sorted_view_consistent():
    series = MetricSeries("m", window=1.0)
    series.record(5.0, 0.0)
    series.record(5.0, 0.5)
    series.record(5.0, 1.2)  # expires the t=0.0 sample only
    assert series.count == 2
    assert series.percentile(50) == 5.0
    series.record(1.0, 3.0)  # expires everything else
    assert series.count == 1
    assert series.percentile(50) == 1.0
    assert series.minimum() == 1.0 and series.maximum() == 1.0

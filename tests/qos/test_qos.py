"""Unit tests for metrics, contracts and the QoS monitor."""

import pytest

from repro.errors import QosError
from repro.events import Simulator
from repro.qos import (
    MetricRegistry,
    MetricSeries,
    QosContract,
    QosMonitor,
    Statistic,
)


class TestMetricSeries:
    def test_window_validation(self):
        with pytest.raises(QosError):
            MetricSeries("m", window=0)

    def test_mean_and_extremes(self):
        series = MetricSeries("m", window=10)
        for i, value in enumerate([1.0, 2.0, 3.0]):
            series.record(value, now=float(i))
        assert series.mean() == 2.0
        assert series.minimum() == 1.0
        assert series.maximum() == 3.0
        assert series.last() == 3.0
        assert series.count == 3

    def test_out_of_order_rejected(self):
        series = MetricSeries("m")
        series.record(1.0, now=5.0)
        with pytest.raises(QosError):
            series.record(2.0, now=4.0)

    def test_window_expiry(self):
        series = MetricSeries("m", window=2.0)
        series.record(100.0, now=0.0)
        series.record(1.0, now=3.0)
        assert series.count == 1
        assert series.mean() == 1.0
        assert series.total_samples == 2

    def test_percentiles(self):
        series = MetricSeries("m", window=100)
        for i in range(1, 101):
            series.record(float(i), now=float(i) / 100)
        assert series.percentile(50) == pytest.approx(50.5)
        assert series.percentile(95) == pytest.approx(95.05)
        assert series.percentile(0) == 1.0
        assert series.percentile(100) == 100.0

    def test_percentile_bounds(self):
        series = MetricSeries("m")
        with pytest.raises(QosError):
            series.percentile(101)

    def test_empty_statistics_are_zero(self):
        series = MetricSeries("m")
        assert series.mean() == 0.0
        assert series.percentile(95) == 0.0
        assert series.stddev() == 0.0
        assert series.rate(10.0) == 0.0
        assert series.empty

    def test_stddev(self):
        series = MetricSeries("m", window=100)
        for i, v in enumerate([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]):
            series.record(v, now=float(i))
        assert series.stddev() == pytest.approx(2.138, abs=0.01)

    def test_rate(self):
        series = MetricSeries("m", window=10)
        for i in range(20):
            series.record(1.0, now=i * 0.5)
        # 20 samples, window covers all (span exactly 9.5 -> 20/9.5)
        assert series.rate(now=9.5) == pytest.approx(20 / 9.5)


class TestRegistry:
    def test_lazy_series_creation(self):
        registry = MetricRegistry()
        registry.record("latency", 0.1, now=0.0)
        assert "latency" in registry
        assert registry.names() == ["latency"]

    def test_snapshot(self):
        registry = MetricRegistry()
        registry.record("latency", 0.1, now=0.0)
        registry.record("latency", 0.3, now=1.0)
        snapshot = registry.snapshot(now=1.0)
        assert snapshot["latency"]["mean"] == pytest.approx(0.2)
        assert snapshot["latency"]["count"] == 2.0


class TestContract:
    def test_empty_name_rejected(self):
        with pytest.raises(QosError):
            QosContract("")

    def make_contract(self):
        return (QosContract("video-sla")
                .require_max("latency", 0.1, Statistic.P95)
                .require_min("throughput", 50.0))

    def test_compliant_when_within_bounds(self):
        registry = MetricRegistry()
        for i in range(20):
            registry.record("latency", 0.01, now=i * 0.1)
            registry.record("throughput", 100.0, now=i * 0.1)
        report = self.make_contract().evaluate(registry, now=2.0)
        assert report.compliant
        assert not report.violations

    def test_violation_detected(self):
        registry = MetricRegistry()
        for i in range(20):
            registry.record("latency", 0.5, now=i * 0.1)
            registry.record("throughput", 100.0, now=i * 0.1)
        report = self.make_contract().evaluate(registry, now=2.0)
        assert not report.compliant
        assert len(report.violations) == 1
        assert report.violations[0].obligation.metric == "latency"

    def test_missing_metric_vacuous_by_default(self):
        report = self.make_contract().evaluate(MetricRegistry(), now=0.0)
        assert report.compliant
        assert all(status.vacuous for status in report.statuses)

    def test_strict_obligation_fails_on_missing_metric(self):
        contract = QosContract("strict").require_min(
            "heartbeat", 1.0, strict=True
        )
        report = contract.evaluate(MetricRegistry(), now=0.0)
        assert not report.compliant

    def test_obligation_describe(self):
        contract = self.make_contract()
        assert contract.obligations[0].describe() == "p95(latency) <= 0.1"


class TestMonitor:
    def test_periodic_checks(self):
        sim = Simulator()
        registry = MetricRegistry()
        monitor = QosMonitor(sim, registry, period=1.0)
        monitor.add_contract(QosContract("c").require_max("latency", 0.1))
        monitor.start()
        registry.record("latency", 0.05, now=0.0)
        sim.run(until=5.5)
        assert monitor.stats.checks == 5
        assert monitor.stats.compliance_ratio == 1.0

    def test_violation_and_restoration_transitions(self):
        sim = Simulator()
        registry = MetricRegistry(window=1.0)
        monitor = QosMonitor(sim, registry, period=1.0)
        monitor.add_contract(QosContract("c").require_max("latency", 0.1))
        events = []
        monitor.subscribe(lambda event, report: events.append(event))
        monitor.start()
        # Good at t<1.5, bad between 1.5 and 3.5, good again after.
        sim.at(registry.record, "latency", 0.05, 0.5, when=0.5)
        sim.at(registry.record, "latency", 0.5, 1.5, when=1.5)
        sim.at(registry.record, "latency", 0.5, 2.5, when=2.5)
        sim.at(registry.record, "latency", 0.05, 3.5, when=3.5)
        sim.run(until=5.5)
        assert "violation" in events
        assert "restored" in events
        assert monitor.stats.violations == 1
        assert monitor.stats.restorations == 1

    def test_stop_halts_checks(self):
        sim = Simulator()
        monitor = QosMonitor(sim, MetricRegistry(), period=1.0)
        monitor.add_contract(QosContract("c").require_max("latency", 0.1))
        monitor.start()
        sim.run(until=2.5)
        monitor.stop()
        sim.run(until=10.0)
        assert monitor.stats.checks == 2

"""Coverage for every contracted statistic and misc QoS paths."""

import pytest

from repro.qos import (
    Comparator,
    MetricRegistry,
    MetricSeries,
    QosContract,
    Statistic,
)


@pytest.fixture
def series():
    s = MetricSeries("m", window=100.0)
    for index, value in enumerate([1.0, 2.0, 3.0, 4.0, 5.0,
                                   6.0, 7.0, 8.0, 9.0, 10.0]):
        s.record(value, now=float(index))
    return s


@pytest.mark.parametrize("statistic,expected", [
    (Statistic.MEAN, 5.5),
    (Statistic.P50, 5.5),
    (Statistic.MAX, 10.0),
    (Statistic.MIN, 1.0),
    (Statistic.LAST, 10.0),
])
def test_statistics_evaluate(series, statistic, expected):
    assert statistic.evaluate(series, now=9.0) == pytest.approx(expected)


def test_p95_p99_order(series):
    p95 = Statistic.P95.evaluate(series, now=9.0)
    p99 = Statistic.P99.evaluate(series, now=9.0)
    assert p95 <= p99 <= 10.0


def test_rate_statistic(series):
    assert Statistic.RATE.evaluate(series, now=9.0) == pytest.approx(10 / 9)


def test_comparators():
    assert Comparator.LE.holds(1.0, 2.0)
    assert not Comparator.LE.holds(3.0, 2.0)
    assert Comparator.GE.holds(3.0, 2.0)
    assert not Comparator.GE.holds(1.0, 2.0)


def test_contract_min_statistic_observes_minimum():
    registry = MetricRegistry()
    for index in range(5):
        registry.record("fps", 30.0 - index, now=float(index))
    contract = QosContract("floor").require_min("fps", 27.0, Statistic.MIN)
    report = contract.evaluate(registry, now=4.0)
    assert not report.compliant  # min is 26 < 27
    assert report.statuses[0].observed == 26.0


def test_contract_min_statistic_compliant():
    registry = MetricRegistry()
    for index in range(5):
        registry.record("fps", 30.0 - index, now=float(index))
    contract = QosContract("floor").require_min("fps", 25.0, Statistic.MIN)
    assert contract.evaluate(registry, now=4.0).compliant


def test_series_reset():
    series = MetricSeries("m")
    series.record(5.0, now=1.0)
    series.reset()
    assert series.empty
    series.record(1.0, now=0.5)  # time may restart after reset
    assert series.last() == 1.0

"""Crash-point and backend-fault injector mechanics."""

import pytest

from repro.durability import MemoryStore, WriteAheadLog
from repro.errors import InjectorError, StoreError
from repro.injectors import (
    CrashInjector,
    FlakyStore,
    SimulatedCrash,
    record_point,
)


class TestRecordPoint:
    def test_plain_phases_key_by_name(self):
        assert record_point({"phase": "intent"}) == "intent"
        assert record_point({"phase": "commit"}) == "commit"

    def test_apply_records_key_per_index(self):
        assert record_point({"phase": "apply", "index": 0}) == "apply:0"
        assert record_point({"phase": "apply", "index": 3}) == "apply:3"

    def test_phaseless_record_keys_empty(self):
        assert record_point({"txn": "t"}) == ""


class TestCrashInjector:
    def test_simulated_crash_is_not_an_exception(self):
        # Rollback handlers catch Exception; a crash must sail past them
        # the way SIGKILL would.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)

    def test_rejects_bad_when_and_mode(self):
        with pytest.raises(InjectorError):
            CrashInjector("commit", when="during")
        with pytest.raises(InjectorError):
            CrashInjector("commit", mode="segfault")

    def test_fires_exactly_once_at_the_armed_point(self):
        injector = CrashInjector("commit", when="after")
        injector.fire("intent", "after")
        injector.fire("commit", "before")
        assert not injector.fired
        with pytest.raises(SimulatedCrash):
            injector.fire("commit", "after")
        assert injector.fired
        injector.fire("commit", "after")  # spent: no second crash

    def test_before_crash_leaves_record_undurable(self):
        store = MemoryStore()
        wal = WriteAheadLog(store)
        CrashInjector("commit", when="before").arm(wal)
        wal.intent("t1", "t1", [], "a")
        with pytest.raises(SimulatedCrash):
            wal.commit("t1")
        assert wal.phases("t1") == ["intent"]

    def test_after_crash_leaves_record_durable(self):
        store = MemoryStore()
        wal = WriteAheadLog(store)
        CrashInjector("commit", when="after").arm(wal)
        wal.intent("t1", "t1", [], "a")
        with pytest.raises(SimulatedCrash):
            wal.commit("t1")
        assert wal.phases("t1") == ["intent", "commit"]

    def test_arm_attaches_to_the_wal(self):
        wal = WriteAheadLog(MemoryStore())
        injector = CrashInjector("intent")
        assert injector.arm(wal) is injector
        assert wal.crash_injector is injector


class TestFlakyStore:
    def test_needs_a_failure_condition(self):
        with pytest.raises(InjectorError):
            FlakyStore(MemoryStore())

    def test_fails_by_point_then_recovers(self):
        store = FlakyStore(MemoryStore(), fail_point="commit")
        store.append("log", {"phase": "intent", "txn": "t"})
        with pytest.raises(StoreError):
            store.append("log", {"phase": "commit", "txn": "t"})
        # failure budget spent: the same point now succeeds
        store.append("log", {"phase": "commit", "txn": "t"})
        assert store.injected == 1
        assert store.appends == 3

    def test_fails_by_append_count(self):
        store = FlakyStore(MemoryStore(), fail_after=2)
        store.append("log", {"n": 1})
        with pytest.raises(StoreError):
            store.append("log", {"n": 2})
        assert store.injected == 1

    def test_failures_minus_one_fails_forever(self):
        store = FlakyStore(MemoryStore(), fail_point="commit", failures=-1)
        for _ in range(3):
            with pytest.raises(StoreError):
                store.append("log", {"phase": "commit", "txn": "t"})
        assert store.injected == 3

    def test_reads_pass_through(self):
        inner = MemoryStore()
        store = FlakyStore(inner, fail_point="commit")
        store.append("log", {"phase": "intent", "txn": "t"})
        assert store.read("log") == inner.read("log")
        assert store.logs() == ["log"]

"""Unit tests for injectors."""

import pytest

from repro.errors import InjectorError
from repro.injectors import (
    DropInjector,
    InjectorManager,
    MulticastInjector,
    RerouteInjector,
    TransformInjector,
    channels_from,
    channels_to,
)
from repro.kernel import Component, Invocation, bind

from tests.helpers import echo_interface, make_echo


def make_channel(client_name="client", server_name="server"):
    client = Component(client_name)
    client.require("peer", echo_interface())
    client.activate()
    server = make_echo(server_name)
    binding = bind(client.required_port("peer"), server.provided_port("svc"))
    return client, server, binding


class TestInjectorKinds:
    def test_transform_injector(self):
        client, server, binding = make_channel()
        manager = InjectorManager()
        manager.inject(
            TransformInjector(
                "upper",
                lambda inv: Invocation(inv.operation,
                                       tuple(a.upper() for a in inv.args)),
            ),
            [binding],
        )
        assert client.required_port("peer").call("echo", "hi") == "server:HI"

    def test_reroute_injector(self):
        client, server, binding = make_channel()
        shadow = make_echo("shadow")
        manager = InjectorManager()
        manager.inject(
            RerouteInjector("detour", shadow.provided_port("svc")),
            [binding],
        )
        assert client.required_port("peer").call("echo", "x") == "shadow:x"
        assert server.state["seen"] == []

    def test_conditional_reroute(self):
        client, server, binding = make_channel()
        shadow = make_echo("shadow")
        manager = InjectorManager()
        manager.inject(
            RerouteInjector(
                "detour", shadow.provided_port("svc"),
                predicate=lambda inv: inv.args[0] == "special",
            ),
            [binding],
        )
        assert client.required_port("peer").call("echo", "normal") == "server:normal"
        assert client.required_port("peer").call("echo", "special") == "shadow:special"

    def test_drop_injector(self):
        client, server, binding = make_channel()
        manager = InjectorManager()
        drop = DropInjector("spam-filter",
                            predicate=lambda inv: inv.args[0] == "spam",
                            result="dropped")
        manager.inject(drop, [binding])
        assert client.required_port("peer").call("echo", "spam") == "dropped"
        assert client.required_port("peer").call("echo", "ham") == "server:ham"
        assert drop.dropped == 1
        assert server.state["seen"] == ["ham"]

    def test_multicast_injector(self):
        client, server, binding = make_channel()
        mirror = make_echo("mirror")
        manager = InjectorManager()
        manager.inject(
            MulticastInjector("tee", [mirror.provided_port("svc")]),
            [binding],
        )
        assert client.required_port("peer").call("echo", "x") == "server:x"
        assert mirror.state["seen"] == ["x"]


class TestScoping:
    def test_channels_from_limits_scope(self):
        client_a, server_a, binding_a = make_channel("alpha", "server-a")
        client_b, server_b, binding_b = make_channel("beta", "server-b")
        manager = InjectorManager()
        count = manager.inject(
            DropInjector("block", predicate=lambda inv: True),
            [binding_a, binding_b],
            scope=channels_from("alpha"),
        )
        assert count == 1
        assert client_a.required_port("peer").call("echo", "x") is None
        assert client_b.required_port("peer").call("echo", "x") == "server-b:x"

    def test_channels_to_matches_target(self):
        client_a, server_a, binding_a = make_channel("alpha", "srv1")
        client_b, server_b, binding_b = make_channel("beta", "srv2")
        manager = InjectorManager()
        count = manager.inject(
            TransformInjector("mark", lambda inv: Invocation(
                inv.operation, (f"*{inv.args[0]}",))),
            [binding_a, binding_b],
            scope=channels_to("srv2"),
        )
        assert count == 1
        assert client_b.required_port("peer").call("echo", "x") == "srv2:*x"

    def test_empty_scope_rejected(self):
        _client, _server, binding = make_channel()
        manager = InjectorManager()
        with pytest.raises(InjectorError, match="matched no channel"):
            manager.inject(
                DropInjector("x", predicate=lambda inv: True),
                [binding],
                scope=channels_from("nobody"),
            )


class TestLifecycle:
    def test_retract_restores_channel(self):
        client, server, binding = make_channel()
        original_target = binding.target
        manager = InjectorManager()
        manager.inject(DropInjector("block", predicate=lambda inv: True),
                       [binding])
        manager.retract("block")
        assert binding.target is original_target
        assert client.required_port("peer").call("echo", "x") == "server:x"

    def test_stacked_injections_compose_and_unwind(self):
        client, server, binding = make_channel()
        manager = InjectorManager()
        manager.inject(
            TransformInjector("upper", lambda inv: Invocation(
                inv.operation, (inv.args[0].upper(),))),
            [binding],
        )
        manager.inject(
            TransformInjector("bang", lambda inv: Invocation(
                inv.operation, (inv.args[0] + "!",))),
            [binding],
        )
        # upper runs first (installed first), then bang.
        assert client.required_port("peer").call("echo", "hi") == "server:HI!"
        manager.retract("upper")
        assert client.required_port("peer").call("echo", "hi") == "server:hi!"
        manager.retract("bang")
        assert client.required_port("peer").call("echo", "hi") == "server:hi"

    def test_duplicate_injection_name_rejected(self):
        _client, _server, binding = make_channel()
        manager = InjectorManager()
        manager.inject(DropInjector("x", predicate=lambda inv: False), [binding])
        with pytest.raises(InjectorError):
            manager.inject(DropInjector("x", predicate=lambda inv: False),
                           [binding])

    def test_retract_unknown_rejected(self):
        with pytest.raises(InjectorError):
            InjectorManager().retract("ghost")

    def test_active_names(self):
        _client, _server, binding = make_channel()
        manager = InjectorManager()
        manager.inject(DropInjector("b", predicate=lambda inv: False), [binding])
        manager.inject(DropInjector("a", predicate=lambda inv: False), [binding])
        assert manager.active_names() == ["a", "b"]

    def test_hit_count(self):
        client, _server, binding = make_channel()
        manager = InjectorManager()
        injector = TransformInjector("id", lambda inv: inv)
        manager.inject(injector, [binding])
        client.required_port("peer").call("echo", "x")
        client.required_port("peer").call("echo", "y")
        assert injector.hit_count == 2

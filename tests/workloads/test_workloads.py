"""Unit tests for workload generators."""

import pytest

from repro.events import Simulator
from repro.netsim import star
from repro.qos import MetricRegistry
from repro.workloads import (
    ClosedLoopGenerator,
    LinkQualityDriver,
    NodeLoadDriver,
    OpenLoopGenerator,
    TelecomWorkload,
    TelecomWorkloadConfig,
    binding_transport,
    clamped,
    composite,
    constant,
    random_walk,
    sinusoidal,
    square_wave,
    step,
)

from tests.helpers import CounterComponent, counter_interface


class TestProfiles:
    def test_constant(self):
        assert constant(0.5)(123.0) == 0.5

    def test_sinusoidal_bounds_and_period(self):
        profile = sinusoidal(base=0.5, amplitude=0.3, period=10.0)
        values = [profile(t / 10) for t in range(200)]
        assert max(values) <= 0.8 + 1e-9
        assert min(values) >= 0.2 - 1e-9
        assert profile(0.0) == pytest.approx(profile(10.0))

    def test_step(self):
        profile = step(0.1, 0.9, at=5.0)
        assert profile(4.9) == 0.1
        assert profile(5.0) == 0.9

    def test_square_wave(self):
        profile = square_wave(low=0.0, high=1.0, period=2.0, duty=0.5)
        assert profile(0.5) == 1.0
        assert profile(1.5) == 0.0

    def test_random_walk_deterministic_and_bounded(self):
        p1 = random_walk(0.5, 0.1, 0.0, 1.0, seed=4)
        p2 = random_walk(0.5, 0.1, 0.0, 1.0, seed=4)
        values = [p1(float(t)) for t in range(100)]
        assert values == [p2(float(t)) for t in range(100)]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_composite_and_clamped(self):
        profile = clamped(composite(constant(0.8), constant(0.4)), 0.0, 1.0)
        assert profile(0.0) == 1.0


class TestDrivers:
    def test_node_load_driver_applies_profile(self):
        sim = Simulator()
        net = star(sim, leaves=1)
        node = net.node("leaf0")
        driver = NodeLoadDriver(sim, node, step(0.1, 0.7, at=2.0), period=1.0)
        sim.run(until=1.5)
        assert node.background_load == pytest.approx(0.1)
        sim.run(until=3.5)
        assert node.background_load == pytest.approx(0.7)
        driver.stop()
        assert len(driver.samples) >= 3

    def test_link_quality_driver(self):
        sim = Simulator()
        net = star(sim, leaves=1)
        link = net.link_between("hub", "leaf0")
        driver = LinkQualityDriver(
            sim, link,
            bandwidth=step(1e6, 1e3, at=1.0),
            loss=constant(0.05),
            period=0.5,
        )
        sim.run(until=2.0)
        assert link.bandwidth == pytest.approx(1e3)
        assert link.loss == pytest.approx(0.05)
        driver.stop()


def make_local_service():
    """A client-side async transport over a local binding."""
    from repro.kernel import Component, bind

    client = Component("client")
    client.require("peer", counter_interface())
    client.activate()
    server = CounterComponent("server")
    server.provide("svc", counter_interface())
    server.activate()
    bind(client.required_port("peer"), server.provided_port("svc"))
    return client, server


class TestTrafficGenerators:
    def test_open_loop_rate(self):
        sim = Simulator()
        client, server = make_local_service()
        generator = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "increment", make_args=lambda i: (1,), rate=100.0,
        )
        generator.start(duration=1.0)
        sim.run()
        assert generator.stats.issued == pytest.approx(100, abs=2)
        assert generator.stats.succeeded == generator.stats.issued
        assert server.state["total"] == generator.stats.issued

    def test_open_loop_poisson_deterministic(self):
        counts = []
        for _ in range(2):
            sim = Simulator()
            client, _server = make_local_service()
            generator = OpenLoopGenerator(
                sim, binding_transport(client.required_port("peer")),
                "increment", make_args=lambda i: (1,), rate=50.0,
                poisson=True, seed=3,
            )
            generator.start(duration=2.0)
            sim.run()
            counts.append(generator.stats.issued)
        assert counts[0] == counts[1] > 0

    def test_open_loop_records_metrics(self):
        sim = Simulator()
        client, _server = make_local_service()
        registry = MetricRegistry()
        generator = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "total", rate=10.0, registry=registry,
        )
        generator.start(duration=1.0)
        sim.run()
        assert registry.series("latency").count == generator.stats.succeeded

    def test_closed_loop_keeps_concurrency(self):
        sim = Simulator()
        client, server = make_local_service()
        generator = ClosedLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "increment", make_args=lambda i: (1,),
            concurrency=3, think_time=0.1,
        )
        generator.start()
        sim.run(until=1.05)
        generator.stop()
        sim.run(until=2.0)
        # 3 streams, one request each per 0.1s think time over ~1s.
        assert 27 <= generator.stats.succeeded <= 33

    def test_failed_transport_counted(self):
        sim = Simulator()
        client, server = make_local_service()
        server.passivate()  # sync local call will raise LifecycleError

        generator = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "total", rate=10.0,
        )
        generator.start(duration=0.5)
        sim.run()
        assert generator.stats.failed == generator.stats.issued > 0
        assert generator.stats.success_ratio == 0.0


class TestTelecomWorkload:
    def frame_sink(self):
        delivered = []

        def send_frame(session, on_delivered):
            delivered.append(session.session_id)
            on_delivered()

        return send_frame, delivered

    def test_sessions_arrive_and_stream(self):
        sim = Simulator()
        send_frame, delivered = self.frame_sink()
        workload = TelecomWorkload(
            sim, ["leaf0", "leaf1"], send_frame,
            TelecomWorkloadConfig(arrival_rate=2.0, mean_duration=2.0,
                                  frame_rate=10.0, seed=1),
        )
        workload.start(duration=10.0)
        sim.run(until=20.0)
        summary = workload.summary()
        assert summary["sessions"] > 5
        assert summary["frames_sent"] > 50
        assert summary["delivery_ratio"] == 1.0
        assert delivered

    def test_mobility_generates_handovers(self):
        sim = Simulator()
        send_frame, _delivered = self.frame_sink()
        workload = TelecomWorkload(
            sim, ["a", "b", "c"], send_frame,
            TelecomWorkloadConfig(arrival_rate=1.0, mean_duration=5.0,
                                  frame_rate=5.0, mobility_rate=1.0, seed=2),
        )
        workload.start(duration=20.0)
        sim.run(until=40.0)
        assert workload.summary()["handovers"] > 0
        assert all(s.access_node in ("a", "b", "c") for s in workload.sessions)

    def test_deterministic_per_seed(self):
        summaries = []
        for _ in range(2):
            sim = Simulator()
            send_frame, _d = self.frame_sink()
            workload = TelecomWorkload(
                sim, ["a"], send_frame,
                TelecomWorkloadConfig(arrival_rate=1.5, seed=9),
            )
            workload.start(duration=10.0)
            sim.run(until=30.0)
            summaries.append(workload.summary())
        assert summaries[0] == summaries[1]

    def test_needs_access_nodes(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TelecomWorkload(sim, [], lambda s, cb: None)

"""Unit tests for the Polylith and Durra baseline reconfigurators."""

import pytest

from repro.baselines import DurraManager, PolylithReconfigurator
from repro.errors import ReconfigurationError
from repro.events import Simulator
from repro.kernel import Assembly
from repro.netsim import star
from repro.reconfig import RewireBinding

from tests.helpers import CounterComponent, counter_interface


def fresh_counter(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


def fresh_client(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    component.require("peer", counter_interface())
    return component


def two_service_assembly():
    """Two independent client→server pairs on a star network."""
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=4))
    for index, service in enumerate(("alpha", "beta")):
        client = fresh_client(f"{service}-client")
        assembly.deploy(client, f"leaf{index * 2}")
        server = fresh_counter(f"{service}-server")
        assembly.deploy(server, f"leaf{index * 2 + 1}")
        assembly.connect(f"{service}-client", "peer",
                         target_component=f"{service}-server")
    return sim, assembly


class TestPolylith:
    def test_replace_module_swaps_and_keeps_state(self):
        sim, assembly = two_service_assembly()
        client = assembly.component("alpha-client")
        client.required_port("peer").call("increment", 5)
        reports = []
        reconfigurator = PolylithReconfigurator(assembly)
        reconfigurator.replace_module("alpha-server",
                                      fresh_counter("alpha-server-v2"),
                                      on_done=reports.append)
        sim.run()
        assert reports and reports[0].blocked_duration > 0
        assert client.required_port("peer").call("total") == 5

    def test_global_freeze_blocks_unrelated_services(self):
        """The defining Polylith cost: beta's channel is frozen while
        alpha is being reconfigured."""
        sim, assembly = two_service_assembly()
        beta_client = assembly.component("beta-client")
        beta_binding = beta_client.required_port("peer").binding
        observed = []

        def probe():
            observed.append(beta_binding.is_blocked)

        reconfigurator = PolylithReconfigurator(assembly)
        reconfigurator.replace_module("alpha-server",
                                      fresh_counter("alpha-server-v2"))
        sim.at(probe, when=0.0005)  # mid-window
        sim.run()
        assert observed == [True]
        assert not beta_binding.is_blocked  # thawed afterwards

    def test_blocked_channel_count_is_global(self):
        sim, assembly = two_service_assembly()
        reports = []
        PolylithReconfigurator(assembly).replace_module(
            "alpha-server", fresh_counter("v2"), on_done=reports.append
        )
        sim.run()
        assert reports[0].blocked_channels == len(assembly.bindings) == 2

    def test_buffered_traffic_flushes_after_thaw(self):
        sim, assembly = two_service_assembly()
        beta_client = assembly.component("beta-client")
        results = []

        def beta_traffic():
            beta_client.required_port("peer").call_async(
                "increment", 1, on_result=results.append
            )

        PolylithReconfigurator(assembly).replace_module(
            "alpha-server", fresh_counter("v2")
        )
        sim.at(beta_traffic, when=0.0005)  # lands in the frozen window
        sim.run()
        assert results == [1]

    def test_timeout_when_never_quiescent(self):
        sim, assembly = two_service_assembly()
        assembly.component("alpha-server")._active_calls = 1
        reconfigurator = PolylithReconfigurator(assembly)
        reconfigurator.apply_async(
            [RewireBinding("alpha-client", "peer",
                           target_component="beta-server")],
            timeout=0.05,
        )
        with pytest.raises(ReconfigurationError, match="reconfiguration point"):
            sim.run()


class TestDurra:
    def test_event_triggered_switch(self):
        sim, assembly = two_service_assembly()
        standby = fresh_counter("alpha-standby")
        assembly.deploy(standby, "leaf2")
        durra = DurraManager(assembly)
        durra.define_configuration(
            "alpha-failover",
            lambda a: [RewireBinding("alpha-client", "peer",
                                     target_component="alpha-standby")],
        )
        durra.on_event("alpha-server-failed", "alpha-failover")

        switch = durra.raise_event("alpha-server-failed")
        assert switch is not None
        assert switch.configuration == "alpha-failover"
        client = assembly.component("alpha-client")
        client.required_port("peer").call("increment", 1)
        assert standby.state["total"] == 1

    def test_unplanned_event_ignored(self):
        _sim, assembly = two_service_assembly()
        durra = DurraManager(assembly)
        assert durra.raise_event("surprise") is None
        assert durra.switches == []

    def test_duplicate_configuration_rejected(self):
        _sim, assembly = two_service_assembly()
        durra = DurraManager(assembly)
        durra.define_configuration("c", lambda a: [])
        with pytest.raises(ReconfigurationError):
            durra.define_configuration("c", lambda a: [])

    def test_trigger_for_unknown_configuration_rejected(self):
        _sim, assembly = two_service_assembly()
        with pytest.raises(ReconfigurationError):
            DurraManager(assembly).on_event("e", "ghost")

    def test_inconsistent_plan_raises(self):
        _sim, assembly = two_service_assembly()
        durra = DurraManager(assembly)

        from repro.reconfig import RemoveBinding

        durra.define_configuration(
            "bad", lambda a: [RemoveBinding("alpha-client", "peer")]
        )
        durra.on_event("e", "bad")
        with pytest.raises(ReconfigurationError, match="inconsistencies"):
            durra.raise_event("e")

    def test_switch_log(self):
        sim, assembly = two_service_assembly()
        standby = fresh_counter("alpha-standby")
        assembly.deploy(standby, "leaf2")
        durra = DurraManager(assembly)
        durra.define_configuration(
            "failover",
            lambda a: [RewireBinding("alpha-client", "peer",
                                     target_component="alpha-standby")],
        )
        durra.on_event("fail", "failover")
        durra.raise_event("fail")
        assert len(durra.switches) == 1
        assert durra.switches[0].changes

"""Unit tests for the strategy infrastructure."""

import pytest

from repro.errors import StrategyError
from repro.strategy import Strategy, StrategySelector, StrategySlot


def hq(frame):
    return f"hq({frame})"


def lq(frame):
    return f"lq({frame})"


def make_slot():
    return StrategySlot("codec", [
        Strategy("high-quality", hq, traits={"quality": 1.0, "bandwidth": 8.0}),
        Strategy("low-quality", lq, traits={"quality": 0.4, "bandwidth": 1.0}),
    ], initial="high-quality")


class TestSlot:
    def test_initial_selection(self):
        slot = make_slot()
        assert slot.current_name == "high-quality"
        assert slot("f1") == "hq(f1)"

    def test_first_registered_is_default_initial(self):
        slot = StrategySlot("s", [Strategy("a", hq), Strategy("b", lq)])
        assert slot.current_name == "a"

    def test_empty_slot_has_no_current(self):
        slot = StrategySlot("s")
        with pytest.raises(StrategyError):
            slot.current

    def test_use_switches(self):
        slot = make_slot()
        slot.use("low-quality", reason="congestion")
        assert slot("f") == "lq(f)"
        assert slot.switch_count == 1
        assert slot.history[-1] == ("low-quality", "congestion")

    def test_use_unknown_rejected(self):
        with pytest.raises(StrategyError, match="choices"):
            make_slot().use("medium")

    def test_register_duplicate_rejected(self):
        slot = make_slot()
        with pytest.raises(StrategyError):
            slot.register(Strategy("high-quality", hq))

    def test_unregister(self):
        slot = make_slot()
        slot.unregister("low-quality")
        assert slot.names() == ["high-quality"]

    def test_unregister_active_rejected(self):
        slot = make_slot()
        with pytest.raises(StrategyError):
            slot.unregister("high-quality")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(StrategyError):
            make_slot().unregister("ghost")

    def test_traits_accessible(self):
        slot = make_slot()
        assert slot.current.traits["bandwidth"] == 8.0


class TestSelector:
    def make_selector(self):
        slot = make_slot()
        selector = StrategySelector(slot, default="high-quality")
        selector.add_rule(
            lambda ctx: ctx.get("bandwidth", 10) < 2.0,
            "low-quality",
            priority=10,
            label="congested",
        )
        return slot, selector

    def test_rule_fires_on_low_bandwidth(self):
        slot, selector = self.make_selector()
        switched = selector.select({"bandwidth": 1.0})
        assert switched == "low-quality"
        assert slot.current_name == "low-quality"

    def test_default_restores(self):
        slot, selector = self.make_selector()
        selector.select({"bandwidth": 1.0})
        switched = selector.select({"bandwidth": 9.0})
        assert switched == "high-quality"

    def test_no_switch_returns_none(self):
        slot, selector = self.make_selector()
        assert selector.select({"bandwidth": 9.0}) is None
        assert slot.switch_count == 0

    def test_priority_orders_rules(self):
        slot = make_slot()
        selector = StrategySelector(slot)
        selector.add_rule(lambda ctx: True, "low-quality", priority=1)
        selector.add_rule(lambda ctx: True, "high-quality", priority=5)
        selector.select({})
        assert slot.current_name == "high-quality"

    def test_rule_for_unknown_strategy_rejected(self):
        slot, selector = self.make_selector()
        with pytest.raises(StrategyError):
            selector.add_rule(lambda ctx: True, "ghost")

    def test_no_default_no_match_keeps_current(self):
        slot = make_slot()
        selector = StrategySelector(slot)
        assert selector.select({"bandwidth": 1.0}) is None
        assert slot.current_name == "high-quality"

    def test_slot_usable_as_component_implementation(self):
        from repro.kernel import Component, Interface, Invocation, Operation

        slot = make_slot()

        class Codec:
            def __init__(self, encode):
                self.encode = encode

        component = Component("codec")
        component.provide(
            "svc",
            Interface("Codec", "1.0", [Operation("encode", ("frame",))]),
            implementation=Codec(slot),
        )
        component.activate()
        port = component.provided_port("svc")
        assert port.invoke(Invocation("encode", ("f",))) == "hq(f)"
        slot.use("low-quality")
        assert port.invoke(Invocation("encode", ("f",))) == "lq(f)"

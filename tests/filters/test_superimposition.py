"""Unit tests for filter superimposition."""

from repro.filters import (
    FilterSet,
    PassFilter,
    StopFilter,
    Superimposition,
    SuperimpositionManager,
    match,
    select_all,
    select_components,
    select_interface,
)
from repro.kernel import Invocation, Registry

from tests.helpers import make_counter, make_echo


def test_select_all_touches_every_port():
    components = [make_counter("c1"), make_echo("e1")]
    superimposition = Superimposition(
        "audit", select_all, lambda: FilterSet("audit", [PassFilter("count")])
    )
    applied = superimposition.apply(components)
    assert len(applied) == 2


def test_select_interface_narrows_scope():
    components = [make_counter("c1"), make_echo("e1")]
    superimposition = Superimposition(
        "echo-only",
        select_interface("Echo"),
        lambda: FilterSet("s", [PassFilter("p")]),
    )
    applied = superimposition.apply(components)
    assert len(applied) == 1


def test_select_components_by_name():
    components = [make_counter("a"), make_counter("b"), make_counter("c")]
    superimposition = Superimposition(
        "targeted",
        select_components("a", "c"),
        lambda: FilterSet("s", [PassFilter("p")]),
    )
    assert len(superimposition.apply(components)) == 2


def test_each_port_gets_fresh_filter_set():
    components = [make_counter("a"), make_counter("b")]
    superimposition = Superimposition(
        "fresh", select_all, lambda: FilterSet("s", [PassFilter("p")])
    )
    applied = superimposition.apply(components)
    assert applied[0] is not applied[1]


def test_manager_impose_and_retract():
    registry = Registry()
    a, b = make_counter("a"), make_counter("b")
    registry.register(a)
    registry.register(b)
    manager = SuperimpositionManager(registry)
    count = manager.impose(Superimposition(
        "mute-writes",
        select_all,
        lambda: FilterSet("mute", [StopFilter("absorb", match("increment"))]),
    ))
    assert count == 2
    assert manager.live_names() == ["mute-writes"]

    a.provided_port("svc").invoke(Invocation("increment", (5,)))
    assert a.state["total"] == 0  # filtered

    assert manager.retract("mute-writes") == 2
    a.provided_port("svc").invoke(Invocation("increment", (5,)))
    assert a.state["total"] == 5  # filter gone
    assert manager.live_names() == []


def test_retract_unknown_is_harmless():
    manager = SuperimpositionManager(Registry())
    assert manager.retract("ghost") == 0

"""Unit tests for composition filters."""

import pytest

from repro.errors import FilterError
from repro.filters import (
    DispatchFilter,
    ErrorFilter,
    FilterSet,
    PassFilter,
    StopFilter,
    TransformFilter,
    WaitFilter,
    match,
)
from repro.kernel import Invocation

from tests.helpers import make_counter, make_echo


class TestMatcher:
    def test_wildcard_matches_everything(self):
        assert match().matches(Invocation("anything"))

    def test_operation_filtering(self):
        matcher = match("get", "put")
        assert matcher.matches(Invocation("get"))
        assert not matcher.matches(Invocation("delete"))

    def test_condition(self):
        matcher = match(when=lambda inv: inv.args and inv.args[0] > 10)
        assert matcher.matches(Invocation("op", (11,)))
        assert not matcher.matches(Invocation("op", (5,)))
        assert not matcher.matches(Invocation("op"))


class TestBuiltinFilters:
    def test_error_filter_rejects(self):
        component = make_counter()
        port = component.provided_port("svc")
        filter_set = FilterSet("guard", [ErrorFilter("no-writes", match("increment"))])
        filter_set.attach_to(port)
        with pytest.raises(FilterError):
            port.invoke(Invocation("increment", (1,)))
        assert port.invoke(Invocation("total")) == 0

    def test_stop_filter_absorbs(self):
        component = make_counter()
        port = component.provided_port("svc")
        FilterSet("mute", [StopFilter("absorb", match("increment"), result=-1)]
                  ).attach_to(port)
        assert port.invoke(Invocation("increment", (5,))) == -1
        assert component.state["total"] == 0

    def test_transform_filter_rewrites_args(self):
        component = make_counter()
        port = component.provided_port("svc")

        def clamp(invocation):
            amount = invocation.args[0] if invocation.args else 1
            clamped = Invocation("increment", (min(amount, 10),),
                                 meta=invocation.meta)
            return clamped

        FilterSet("clamp", [TransformFilter("clamp", clamp, match("increment"))]
                  ).attach_to(port)
        assert port.invoke(Invocation("increment", (100,))) == 10

    def test_transform_must_return_invocation(self):
        component = make_counter()
        port = component.provided_port("svc")
        FilterSet("bad", [TransformFilter("bad", lambda inv: "nope")]
                  ).attach_to(port)
        with pytest.raises(FilterError):
            port.invoke(Invocation("total"))

    def test_dispatch_filter_redirects(self):
        component = make_echo("front")
        backend = make_echo("backend")
        port = component.provided_port("svc")
        FilterSet("route", [
            DispatchFilter("to-backend", backend.provided_port("svc"),
                           match("echo")),
        ]).attach_to(port)
        assert port.invoke(Invocation("echo", ("x",))) == "backend:x"
        assert component.state["seen"] == []

    def test_pass_filter_counts_matches(self):
        component = make_counter()
        port = component.provided_port("svc")
        keep = PassFilter("keep", match("total"))
        FilterSet("s", [keep]).attach_to(port)
        port.invoke(Invocation("total"))
        port.invoke(Invocation("increment"))
        assert keep.match_count == 1

    def test_wait_filter_queues_until_release(self):
        component = make_counter()
        port = component.provided_port("svc")
        gate = {"open": False}
        waiter = WaitFilter("hold", guard=lambda: gate["open"],
                            matcher=match("increment"), queued_result="queued")
        FilterSet("w", [waiter]).attach_to(port)
        assert port.invoke(Invocation("increment", (5,))) == "queued"
        assert waiter.pending == 1
        assert component.state["total"] == 0
        gate["open"] = True
        results = waiter.release()
        assert results == [5]
        assert component.state["total"] == 5
        assert waiter.pending == 0

    def test_wait_filter_release_keeps_unsatisfied(self):
        component = make_counter()
        port = component.provided_port("svc")
        gate = {"open": False}
        waiter = WaitFilter("hold", guard=lambda: gate["open"],
                            matcher=match("increment"))
        FilterSet("w", [waiter]).attach_to(port)
        port.invoke(Invocation("increment", (1,)))
        assert waiter.release() == []
        assert waiter.pending == 1


class TestFilterSet:
    def test_sequencing_order_matters(self):
        component = make_counter()
        port = component.provided_port("svc")

        def add_ten(invocation):
            return Invocation("increment", (invocation.args[0] + 10,))

        def double(invocation):
            return Invocation("increment", (invocation.args[0] * 2,))

        ordered = FilterSet("math", [
            TransformFilter("add", add_ten, match("increment")),
            TransformFilter("double", double, match("increment")),
        ])
        ordered.attach_to(port)
        # (1 + 10) * 2 = 22
        assert port.invoke(Invocation("increment", (1,))) == 22

        ordered.reorder(["double", "add"])
        component.state["total"] = 0
        # (1 * 2) + 10 = 12
        assert port.invoke(Invocation("increment", (1,))) == 12

    def test_reorder_must_mention_all(self):
        filter_set = FilterSet("s", [PassFilter("a"), PassFilter("b")])
        with pytest.raises(FilterError):
            filter_set.reorder(["a"])
        with pytest.raises(FilterError):
            filter_set.reorder(["a", "c"])

    def test_remove_by_name(self):
        filter_set = FilterSet("s", [PassFilter("a")])
        filter_set.remove("a")
        assert len(filter_set) == 0
        with pytest.raises(FilterError):
            filter_set.remove("a")

    def test_contains_and_insert(self):
        filter_set = FilterSet("s", [PassFilter("a")])
        filter_set.insert(0, PassFilter("first"))
        assert "first" in filter_set
        assert filter_set.filters[0].name == "first"

    def test_dynamic_attach_detach(self):
        component = make_counter()
        port = component.provided_port("svc")
        filter_set = FilterSet("mute", [StopFilter("absorb", match("increment"))])
        filter_set.attach_to(port)
        assert filter_set.attachment_count == 1
        port.invoke(Invocation("increment", (5,)))
        assert component.state["total"] == 0
        filter_set.detach_from(port)
        port.invoke(Invocation("increment", (5,)))
        assert component.state["total"] == 5

    def test_detach_not_attached_raises(self):
        component = make_counter()
        with pytest.raises(FilterError):
            FilterSet("s").detach_from(component.provided_port("svc"))

    def test_attach_to_required_port_filters_output(self):
        from repro.kernel import Component, bind

        client = Component("client")
        from tests.helpers import counter_interface

        client.require("peer", counter_interface())
        client.activate()
        server = make_counter("server")
        bind(client.required_port("peer"), server.provided_port("svc"))

        def double(invocation):
            return Invocation("increment", (invocation.args[0] * 2,))

        FilterSet("out", [TransformFilter("double", double, match("increment"))]
                  ).attach_to(client.required_port("peer"))
        assert client.required_port("peer").call("increment", 3) == 6

    def test_attach_to_incompatible_object_raises(self):
        with pytest.raises(FilterError):
            FilterSet("s").attach_to(object())

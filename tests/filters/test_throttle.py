"""Unit tests for the throttle (admission-control) filter."""

import pytest

from repro.errors import FilterError
from repro.events import PeriodicTimer, Simulator
from repro.filters import FilterSet, ThrottleFilter, match
from repro.kernel import Invocation

from tests.helpers import make_counter


def test_parameters_validated():
    with pytest.raises(FilterError):
        ThrottleFilter("t", lambda: 0.0, limit=0, window=1.0)
    with pytest.raises(FilterError):
        ThrottleFilter("t", lambda: 0.0, limit=1, window=0.0)


def test_admits_up_to_limit_then_rejects():
    clock = {"now": 0.0}
    component = make_counter()
    port = component.provided_port("svc")
    throttle = ThrottleFilter("t", lambda: clock["now"], limit=3, window=1.0,
                              matcher=match("increment"),
                              rejected_result="throttled")
    FilterSet("adm", [throttle]).attach_to(port)
    results = [port.invoke(Invocation("increment", (1,))) for _ in range(5)]
    assert results == [1, 2, 3, "throttled", "throttled"]
    assert throttle.rejected_count == 2
    assert component.state["total"] == 3


def test_window_slides_with_clock():
    clock = {"now": 0.0}
    component = make_counter()
    port = component.provided_port("svc")
    throttle = ThrottleFilter("t", lambda: clock["now"], limit=2, window=1.0,
                              rejected_result="no")
    FilterSet("adm", [throttle]).attach_to(port)
    assert port.invoke(Invocation("increment", (1,))) == 1
    assert port.invoke(Invocation("increment", (1,))) == 2
    assert port.invoke(Invocation("increment", (1,))) == "no"
    clock["now"] = 1.5  # the first two admissions aged out
    assert port.invoke(Invocation("increment", (1,))) == 3


def test_raise_mode():
    component = make_counter()
    port = component.provided_port("svc")
    throttle = ThrottleFilter("t", lambda: 0.0, limit=1, window=1.0)
    FilterSet("adm", [throttle]).attach_to(port)
    port.invoke(Invocation("increment", (1,)))
    with pytest.raises(FilterError, match="rate limit"):
        port.invoke(Invocation("increment", (1,)))


def test_with_simulated_clock():
    sim = Simulator()
    component = make_counter()
    port = component.provided_port("svc")
    throttle = ThrottleFilter("t", lambda: sim.now, limit=5, window=1.0,
                              rejected_result="shed")
    FilterSet("adm", [throttle]).attach_to(port)
    outcomes = []

    # 20 calls/second against a 5-per-second budget.
    timer = PeriodicTimer(sim, 0.05, lambda: outcomes.append(
        port.invoke(Invocation("increment", (1,)))))
    sim.run(until=2.0)
    timer.stop()
    shed = sum(1 for outcome in outcomes if outcome == "shed")
    admitted = len(outcomes) - shed
    # Budget: ~5 per sliding second over 2 seconds.
    assert 9 <= admitted <= 12
    assert shed == len(outcomes) - admitted


def test_non_matching_operations_bypass_throttle():
    component = make_counter()
    port = component.provided_port("svc")
    throttle = ThrottleFilter("t", lambda: 0.0, limit=1, window=1.0,
                              matcher=match("increment"),
                              rejected_result="no")
    FilterSet("adm", [throttle]).attach_to(port)
    port.invoke(Invocation("increment", (1,)))
    for _ in range(5):
        assert port.invoke(Invocation("total")) == 1

"""Unit tests for composition frameworks."""

import pytest

from repro.frameworks import CompositionFramework, FrameworkError, SlotSpec
from repro.kernel import Component, Interface, Invocation, Operation, bind
from repro.lts import Lts

from tests.helpers import (
    counter_interface,
    echo_interface,
    make_counter,
    make_echo,
)


def cabinet():
    return CompositionFramework("cabinet", [
        SlotSpec("codec", echo_interface()),
        SlotSpec("store", counter_interface()),
        SlotSpec("spare", echo_interface(), required=False),
    ])


class TestConstruction:
    def test_needs_slots(self):
        with pytest.raises(FrameworkError):
            CompositionFramework("empty", [])

    def test_duplicate_slots_rejected(self):
        with pytest.raises(FrameworkError):
            CompositionFramework("dup", [
                SlotSpec("a", echo_interface()),
                SlotSpec("a", echo_interface()),
            ])

    def test_unknown_slot_lookup(self):
        with pytest.raises(FrameworkError):
            cabinet().slot("ghost")


class TestPlugging:
    def test_plug_and_invoke(self):
        framework = cabinet()
        framework.plug("codec", make_echo("enc").provided_port("svc"))
        result = framework.facade("codec").invoke(Invocation("echo", ("x",)))
        assert result == "enc:x"

    def test_family_compliance_enforced(self):
        framework = cabinet()
        with pytest.raises(FrameworkError, match="accepts family"):
            framework.plug("codec", make_counter("c").provided_port("svc"))

    def test_protocol_compliance_enforced(self):
        protocol = Lts.cycle("family", ["echo"])
        framework = CompositionFramework("strict", [
            SlotSpec("codec", echo_interface(), protocol=protocol),
        ])
        rogue = make_echo("rogue")
        rogue.behaviour = Lts.cycle("rogue", ["echo", "leak"])
        with pytest.raises(FrameworkError, match="violates the family"):
            framework.plug("codec", rogue.provided_port("svc"))
        good = make_echo("good")
        good.behaviour = Lts.cycle("good", ["echo"])
        framework.plug("codec", good.provided_port("svc"))

    def test_occupied_slot_rejects_plug(self):
        framework = cabinet()
        framework.plug("codec", make_echo("a").provided_port("svc"))
        with pytest.raises(FrameworkError, match="occupied"):
            framework.plug("codec", make_echo("b").provided_port("svc"))

    def test_empty_slot_invocation_fails(self):
        framework = cabinet()
        with pytest.raises(FrameworkError, match="empty"):
            framework.facade("codec").invoke(Invocation("echo", ("x",)))

    def test_unplug(self):
        framework = cabinet()
        port = make_echo("a").provided_port("svc")
        framework.plug("codec", port)
        assert framework.unplug("codec") is port
        with pytest.raises(FrameworkError):
            framework.unplug("codec")

    def test_completeness_tracks_required_slots(self):
        framework = cabinet()
        assert not framework.is_complete()
        framework.plug("codec", make_echo("a").provided_port("svc"))
        framework.plug("store", make_counter("c").provided_port("svc"))
        assert framework.is_complete()  # 'spare' is optional


class TestInterchange:
    def test_swap_interchanges_card_atomically(self):
        framework = cabinet()
        framework.plug("codec", make_echo("v1").provided_port("svc"))
        facade = framework.facade("codec")
        assert facade.invoke(Invocation("echo", ("x",))) == "v1:x"
        old = framework.swap("codec", make_echo("v2").provided_port("svc"))
        assert old.component.name == "v1"
        assert facade.invoke(Invocation("echo", ("x",))) == "v2:x"
        assert framework.slot("codec").swap_count == 1

    def test_swap_validates_before_removal(self):
        framework = cabinet()
        framework.plug("codec", make_echo("v1").provided_port("svc"))
        with pytest.raises(FrameworkError):
            framework.swap("codec", make_counter("bad").provided_port("svc"))
        # Old card still in place after the rejected swap.
        assert framework.facade("codec").invoke(
            Invocation("echo", ("x",))) == "v1:x"

    def test_callers_bound_to_facade_survive_swaps(self):
        framework = cabinet()
        framework.plug("codec", make_echo("v1").provided_port("svc"))
        client = Component("client")
        client.require("enc", echo_interface())
        client.activate()
        bind(client.required_port("enc"), framework.facade("codec"))
        assert client.required_port("enc").call("echo", "a") == "v1:a"
        framework.swap("codec", make_echo("v2").provided_port("svc"))
        assert client.required_port("enc").call("echo", "b") == "v2:b"


class TestAspectSlots:
    def test_aspects_cut_across_all_slots(self):
        framework = cabinet()
        framework.plug("codec", make_echo("enc").provided_port("svc"))
        framework.plug("store", make_counter("db").provided_port("svc"))
        seen = []

        def audit(invocation, proceed):
            seen.append((invocation.meta["slot"], invocation.operation))
            return proceed(invocation)

        framework.install_aspect("audit", audit)
        framework.facade("codec").invoke(Invocation("echo", ("x",)))
        framework.facade("store").invoke(Invocation("increment", (1,)))
        assert seen == [("codec", "echo"), ("store", "increment")]

    def test_aspects_interchange_dynamically(self):
        framework = cabinet()
        framework.plug("codec", make_echo("enc").provided_port("svc"))
        framework.install_aspect("wrap",
                                 lambda inv, proceed: f"[{proceed(inv)}]")
        facade = framework.facade("codec")
        assert facade.invoke(Invocation("echo", ("x",))) == "[enc:x]"
        framework.remove_aspect("wrap")
        assert facade.invoke(Invocation("echo", ("x",))) == "enc:x"

    def test_duplicate_and_missing_aspects_rejected(self):
        framework = cabinet()
        framework.install_aspect("a", lambda inv, proceed: proceed(inv))
        with pytest.raises(FrameworkError):
            framework.install_aspect("a", lambda inv, proceed: proceed(inv))
        with pytest.raises(FrameworkError):
            framework.remove_aspect("ghost")


class TestDescribe:
    def test_describe_reports_cabinet_state(self):
        framework = cabinet()
        framework.plug("codec", make_echo("enc").provided_port("svc"))
        framework.install_aspect("audit",
                                 lambda inv, proceed: proceed(inv))
        info = framework.describe()
        assert info["complete"] is False
        assert info["slots"]["codec"]["occupant"] == "enc.svc"
        assert info["slots"]["store"]["occupant"] is None
        assert info["aspects"] == ["audit"]

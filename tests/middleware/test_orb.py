"""Unit tests for the ORB and remote proxies."""

import pytest

from repro.errors import MiddlewareError, RequestError
from repro.errors import TimeoutError as OrbTimeoutError
from repro.events import Simulator
from repro.middleware import Orb, RemoteProxy, metrics_recorder
from repro.netsim import star
from repro.qos import MetricRegistry

from tests.helpers import counter_interface, make_counter, make_flaky


def make_world(loss=0.0):
    sim = Simulator()
    net = star(sim, leaves=2)
    if loss:
        net.link_between("hub", "leaf1").set_quality(loss=loss)
    client_orb = Orb(net, "leaf0", default_timeout=1.0)
    server_orb = Orb(net, "leaf1")
    server = make_counter("server")
    server.node_name = "leaf1"
    server_orb.register("counter", server.provided_port("svc"))
    return sim, net, client_orb, server_orb, server


class TestBasicRpc:
    def test_request_response_roundtrip(self):
        sim, _net, client_orb, _server_orb, server = make_world()
        results = []
        client_orb.call("leaf1", "counter", "increment", 5,
                        on_result=results.append)
        sim.run()
        assert results == [5]
        assert server.state["total"] == 5
        assert client_orb.stats.responses_received == 1

    def test_latency_includes_network_and_execution(self):
        sim, _net, client_orb, _server_orb, _server = make_world()
        done = []
        client_orb.call("leaf1", "counter", "total",
                        on_result=lambda r: done.append(sim.now))
        sim.run()
        # Two link hops each way plus server execution: strictly > 0.
        assert done[0] > 0.004
        assert client_orb.stats.mean_latency > 0

    def test_unknown_object_returns_error(self):
        sim, _net, client_orb, _server_orb, _server = make_world()
        errors = []
        client_orb.call("leaf1", "ghost", "total", on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], RequestError)
        assert "no object" in str(errors[0])

    def test_servant_exception_ships_to_caller(self):
        sim, net, client_orb, server_orb, _server = make_world()
        flaky = make_flaky("flaky", failures=1)
        server_orb.register("flaky", flaky.provided_port("svc"))
        errors = []
        client_orb.call("leaf1", "flaky", "echo", "x", on_error=errors.append)
        sim.run()
        assert isinstance(errors[0], RequestError)
        assert client_orb.stats.remote_errors == 1

    def test_duplicate_registration_rejected(self):
        _sim, _net, _client_orb, server_orb, server = make_world()
        with pytest.raises(MiddlewareError):
            server_orb.register("counter", server.provided_port("svc"))

    def test_unregister(self):
        sim, _net, client_orb, server_orb, _server = make_world()
        server_orb.unregister("counter")
        with pytest.raises(MiddlewareError):
            server_orb.unregister("counter")
        errors = []
        client_orb.call("leaf1", "counter", "total", on_error=errors.append)
        sim.run()
        assert errors


class TestTimeoutsAndRetries:
    def test_timeout_on_dead_server(self):
        sim, net, client_orb, _server_orb, _server = make_world()
        net.node("leaf1").crash()
        net.invalidate_routes()
        errors = []
        client_orb.call("leaf1", "counter", "total", on_error=errors.append,
                        timeout=0.5)
        sim.run()
        assert isinstance(errors[0], OrbTimeoutError)
        assert client_orb.stats.timeouts == 1

    def test_retry_recovers_from_transient_loss(self):
        # 100% loss initially; link heals before the retry fires.
        sim, net, client_orb, _server_orb, server = make_world()
        net.link_between("hub", "leaf1").set_quality(loss=1.0)
        results, errors = [], []
        client_orb.call("leaf1", "counter", "increment", 1,
                        on_result=results.append, on_error=errors.append,
                        timeout=0.2, retries=2)
        sim.at(net.link_between("hub", "leaf1").set_quality, 0.002,
               1_000_000.0, 0.0, when=0.3)
        sim.run()
        assert results == [1]
        assert errors == []
        assert client_orb.stats.retries >= 1

    def test_retries_exhausted(self):
        sim, net, client_orb, _server_orb, _server = make_world()
        net.link_between("hub", "leaf1").set_quality(loss=1.0)
        errors = []
        client_orb.call("leaf1", "counter", "total", on_error=errors.append,
                        timeout=0.1, retries=1)
        sim.run()
        assert isinstance(errors[0], OrbTimeoutError)

    def test_late_reply_after_timeout_dropped(self):
        # Slow link: reply arrives after the timeout already fired.
        sim = Simulator()
        net = star(sim, leaves=2, latency=0.4)
        client_orb = Orb(net, "leaf0")
        server_orb = Orb(net, "leaf1")
        server = make_counter("server")
        server_orb.register("counter", server.provided_port("svc"))
        results, errors = [], []
        client_orb.call("leaf1", "counter", "increment", 1,
                        on_result=results.append, on_error=errors.append,
                        timeout=0.5)
        sim.run()
        assert results == []  # reply (1.6s rtt) discarded
        assert len(errors) == 1
        assert server.state["total"] == 1  # server did serve it


class TestDynamicBinding:
    def test_rebind_object_key(self):
        sim, _net, client_orb, server_orb, server = make_world()
        replacement = make_counter("server-v2")
        replacement.state["total"] = 100
        server_orb.rebind("counter", replacement.provided_port("svc"))
        results = []
        client_orb.call("leaf1", "counter", "total", on_result=results.append)
        sim.run()
        assert results == [100]

    def test_rebind_unknown_key_rejected(self):
        _sim, _net, _client_orb, server_orb, server = make_world()
        with pytest.raises(MiddlewareError):
            server_orb.rebind("ghost", server.provided_port("svc"))

    def test_proxy_rebind_follows_migration(self):
        sim = Simulator()
        net = star(sim, leaves=3)
        client_orb = Orb(net, "leaf0")
        orb_a = Orb(net, "leaf1")
        orb_b = Orb(net, "leaf2")
        server = make_counter("server")
        orb_a.register("counter", server.provided_port("svc"))
        proxy = RemoteProxy(client_orb, "leaf1", "counter",
                            counter_interface())
        results = []
        proxy.call("increment", 1, on_result=results.append)
        sim.run()
        # "Migrate": export on leaf2, rebind the proxy.
        orb_a.unregister("counter")
        orb_b.register("counter", server.provided_port("svc"))
        proxy.rebind("leaf2")
        proxy.call("increment", 1, on_result=results.append)
        sim.run()
        assert results == [1, 2]


class TestProxy:
    def test_arity_checked_locally(self):
        _sim, _net, client_orb, _server_orb, _server = make_world()
        proxy = RemoteProxy(client_orb, "leaf1", "counter",
                            counter_interface())
        with pytest.raises(MiddlewareError):
            proxy.call("increment", 1, 2, 3)

    def test_unknown_operation_rejected_locally(self):
        from repro.errors import InterfaceError

        _sim, _net, client_orb, _server_orb, _server = make_world()
        proxy = RemoteProxy(client_orb, "leaf1", "counter",
                            counter_interface())
        with pytest.raises(InterfaceError):
            proxy.call("vanish")


class TestInterceptorsAndQos:
    def test_client_interceptor_observes_and_rewrites(self):
        sim, _net, client_orb, _server_orb, server = make_world()
        seen = []

        def doubler(context, proceed):
            seen.append(context.operation)
            context.args = tuple(a * 2 for a in context.args)
            proceed(context)

        client_orb.client_interceptors.append(doubler)
        results = []
        client_orb.call("leaf1", "counter", "increment", 3,
                        on_result=results.append)
        sim.run()
        assert seen == ["increment"]
        assert results == [6]

    def test_server_interceptor_can_short_circuit(self):
        sim, _net, client_orb, server_orb, server = make_world()

        def block_all(context, proceed):
            # Never call proceed: the request is silently dropped (the
            # client times out) — an admission-control interceptor.
            return None

        server_orb.server_interceptors.append(block_all)
        errors = []
        client_orb.call("leaf1", "counter", "total", on_error=errors.append,
                        timeout=0.2)
        sim.run()
        assert isinstance(errors[0], OrbTimeoutError)
        assert server.state["total"] == 0

    def test_metrics_recorder_feeds_registry(self):
        sim, _net, client_orb, _server_orb, _server = make_world()
        registry = MetricRegistry()
        client_orb.qos_observers.append(metrics_recorder(registry, sim))
        done = []
        client_orb.call("leaf1", "counter", "total", on_result=done.append)
        sim.run()
        assert "rpc.latency" in registry
        assert registry.series("rpc.latency").count == 1

    def test_loaded_server_serves_slower(self):
        times = []
        for load in (0.0, 0.9):
            sim, net, client_orb, _server_orb, _server = make_world()
            net.node("leaf1").set_background_load(load)
            done = []
            client_orb.call("leaf1", "counter", "total",
                            on_result=lambda r: done.append(sim.now))
            sim.run()
            times.append(done[0])
        assert times[1] > times[0]

"""Pluggable-protocol tests: interceptors as the ORB's protocol plane.

The paper cites the "pluggable protocols framework for object request
broker middleware" [Kuhn98]; in this ORB, client and server interceptors
form that plane.  These tests plug in compression (shrinks the simulated
payload, changing real transfer time) and deadline propagation.
"""

import pytest

from repro.events import Simulator
from repro.middleware import Orb, deadline_propagation
from repro.netsim import star

from tests.helpers import make_counter


def make_world(bandwidth=10_000.0):
    sim = Simulator()
    net = star(sim, leaves=2, bandwidth=bandwidth)
    client_orb = Orb(net, "leaf0", default_timeout=10.0)
    server_orb = Orb(net, "leaf1")
    server = make_counter("server")
    server_orb.register("counter", server.provided_port("svc"))
    return sim, net, client_orb, server_orb, server


def compression_protocol(ratio=4.0):
    """Client interceptor shrinking the on-wire payload size."""

    def interceptor(context, proceed):
        original = context.meta.get("payload_size", 256)
        context.meta["payload_size"] = max(16, int(original / ratio))
        context.meta["compressed"] = True
        proceed(context)

    return interceptor


class TestCompressionPlugin:
    def test_compressed_requests_arrive_faster_on_slow_links(self):
        times = {}
        for plugged in (False, True):
            sim, _net, client_orb, _server_orb, _server = make_world(
                bandwidth=5_000.0)
            if plugged:
                client_orb.client_interceptors.append(compression_protocol())
            done = []
            client_orb.call("leaf1", "counter", "total",
                            on_result=lambda r: done.append(sim.now),
                            payload_size=4096)
            sim.run()
            times[plugged] = done[0]
        assert times[True] < times[False]

    def test_server_sees_protocol_metadata(self):
        sim, _net, client_orb, server_orb, _server = make_world()
        client_orb.client_interceptors.append(compression_protocol())
        seen = []
        server_orb.server_interceptors.append(
            lambda context, proceed: (seen.append(
                context.meta.get("compressed", False)), proceed(context))[1]
        )
        client_orb.call("leaf1", "counter", "total")
        sim.run()
        assert seen == [True]


class TestDeadlinePropagation:
    def test_deadline_stamped_into_request_metadata(self):
        sim, _net, client_orb, server_orb, _server = make_world()
        client_orb.client_interceptors.append(deadline_propagation())
        deadlines = []
        server_orb.server_interceptors.append(
            lambda context, proceed: (deadlines.append(
                context.meta.get("deadline")), proceed(context))[1]
        )
        client_orb.call("leaf1", "counter", "total", timeout=0.7)
        sim.run()
        assert deadlines and deadlines[0] == pytest.approx(0.7)

    def test_server_can_shed_expired_work(self):
        sim, net, client_orb, server_orb, server = make_world()
        client_orb.client_interceptors.append(deadline_propagation())

        def admission_control(context, proceed):
            deadline = context.meta.get("deadline")
            if deadline is not None and sim.now > deadline:
                return  # drop silently: the client already gave up
            proceed(context)

        server_orb.server_interceptors.append(admission_control)
        # Slow the link so the request arrives after its own deadline.
        net.link_between("hub", "leaf1").set_quality(latency=0.5)
        errors = []
        client_orb.call("leaf1", "counter", "increment", 1,
                        on_error=errors.append, timeout=0.2)
        sim.run()
        assert errors  # the client timed out...
        assert server.state["total"] == 0  # ...and the server shed the work

"""Unit tests for the naming service and named proxies."""

import pytest

from repro.errors import MiddlewareError, RequestError
from repro.events import Simulator
from repro.middleware import (
    NamedProxy,
    NamingClient,
    deploy_naming_service,
    Orb,
)
from repro.netsim import star

from tests.helpers import counter_interface, make_counter


def make_world():
    sim = Simulator()
    net = star(sim, leaves=3)
    orbs = {name: Orb(net, name, default_timeout=2.0)
            for name in ("hub", "leaf0", "leaf1", "leaf2")}
    naming = deploy_naming_service(orbs["hub"])
    return sim, net, orbs, naming


class TestDirectory:
    def test_register_and_resolve_remotely(self):
        sim, _net, orbs, _naming = make_world()
        client = NamingClient(orbs["leaf0"], "hub")
        client.register("counter", "leaf1", "counter-key")
        resolved = []
        client.resolve("counter", resolved.append)
        sim.run()
        assert resolved == [("leaf1", "counter-key")]

    def test_resolve_unknown_errors(self):
        sim, _net, orbs, _naming = make_world()
        client = NamingClient(orbs["leaf0"], "hub")
        errors = []
        client.resolve("ghost", lambda entry: None, errors.append)
        sim.run()
        assert isinstance(errors[0], RequestError)

    def test_unregister(self):
        sim, _net, orbs, naming = make_world()
        client = NamingClient(orbs["leaf0"], "hub")
        client.register("x", "leaf1", "k")
        client.unregister("x")
        sim.run()
        assert naming.state["entries"] == {}


class TestNamedProxy:
    def export_counter(self, orbs, node="leaf1"):
        server = make_counter("server")
        orbs[node].register("counter-key", server.provided_port("svc"))
        NamingClient(orbs[node], "hub").register("counter", node,
                                                 "counter-key")
        return server

    def test_call_by_name(self):
        sim, _net, orbs, _naming = make_world()
        server = self.export_counter(orbs)
        proxy = NamedProxy(orbs["leaf0"], "hub", "counter",
                           counter_interface())
        results = []
        proxy.call("increment", 5, on_result=results.append)
        sim.run()
        assert results == [5]
        assert server.state["total"] == 5
        assert proxy.resolution_count == 1

    def test_resolution_cached_across_calls(self):
        sim, _net, orbs, _naming = make_world()
        self.export_counter(orbs)
        proxy = NamedProxy(orbs["leaf0"], "hub", "counter",
                           counter_interface())
        results = []
        proxy.call("increment", 1, on_result=results.append)
        sim.run()
        proxy.call("increment", 1, on_result=results.append)
        sim.run()
        assert results == [1, 2]
        assert proxy.resolution_count == 1  # second call hit the cache

    def test_arity_checked_locally(self):
        _sim, _net, orbs, _naming = make_world()
        proxy = NamedProxy(orbs["leaf0"], "hub", "counter",
                           counter_interface())
        with pytest.raises(MiddlewareError):
            proxy.call("increment", 1, 2, 3)

    def test_migration_transparent_via_reresolution(self):
        sim, _net, orbs, _naming = make_world()
        server = self.export_counter(orbs, node="leaf1")
        proxy = NamedProxy(orbs["leaf0"], "hub", "counter",
                           counter_interface(), timeout=0.5)
        results, errors = [], []
        proxy.call("increment", 1, on_result=results.append,
                   on_error=errors.append)
        sim.run()

        # Migrate: re-export on leaf2 and update the directory; the
        # caller never touches the proxy.
        orbs["leaf1"].unregister("counter-key")
        orbs["leaf2"].register("counter-key", server.provided_port("svc"))
        NamingClient(orbs["leaf2"], "hub").register("counter", "leaf2",
                                                    "counter-key")
        sim.run()
        proxy.call("increment", 1, on_result=results.append,
                   on_error=errors.append)
        sim.run()
        assert results == [1, 2]
        assert errors == []
        assert proxy.resolution_count == 2  # stale cache was refreshed

    def test_unresolvable_name_propagates_error(self):
        sim, _net, orbs, _naming = make_world()
        proxy = NamedProxy(orbs["leaf0"], "hub", "ghost",
                           counter_interface())
        errors = []
        proxy.call("total", on_error=errors.append)
        sim.run()
        assert errors

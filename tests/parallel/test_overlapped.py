"""Overlapped outbox exchange: pipelined rounds, identical simulation.

The tentpole guarantees under test:

* overlapped mode produces the **byte-identical** merged telemetry
  checksum as barrier mode and the single-shard baseline — per-region
  horizons and injection order are the same by construction, only the
  *waiting* changes;
* it executes strictly fewer synchronization stalls (each region gates
  only on its boundary neighbors, not on a global barrier);
* supervision still holds: a worker SIGKILLed mid-run under overlapped
  exchange is revived by deterministic replay with the checksum
  unchanged.
"""

from functools import partial

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    ParallelSimulation,
    build_star_region,
    star_ring_partition,
)

REGIONS = 4
LEAVES = 3
UNTIL = 2.0

BUILD = partial(build_star_region, leaves=LEAVES, messages=160,
                until=UNTIL, cross_fraction=0.3)
TELEMETRY = {"sample_rate": 1.0, "seed": 7}


def make_sim(seed=11):
    partition = star_ring_partition(REGIONS, leaves=LEAVES)
    return ParallelSimulation(partition, BUILD, seed=seed,
                              telemetry=TELEMETRY)


@pytest.fixture(scope="module")
def baseline():
    return make_sim().run(until=UNTIL, backend="inline")


@pytest.fixture(scope="module")
def overlapped_inline():
    return make_sim().run(until=UNTIL, backend="inline", mode="overlapped")


@pytest.fixture(scope="module")
def overlapped_process():
    return make_sim().run(until=UNTIL, backend="process", mode="overlapped")


class TestTraceEquality:
    def test_inline_overlapped_matches_barrier(self, baseline,
                                               overlapped_inline):
        assert overlapped_inline.checksum == baseline.checksum
        assert overlapped_inline.executed == baseline.executed

    def test_process_overlapped_matches_barrier(self, baseline,
                                                overlapped_process):
        assert overlapped_process.checksum == baseline.checksum
        assert overlapped_process.executed == baseline.executed

    def test_same_round_structure(self, baseline, overlapped_inline):
        # Non-adaptive overlapped keeps the barrier's exact per-region
        # window formula; only the dispatch gating differs.
        assert overlapped_inline.rounds == baseline.rounds

    def test_stats_identical(self, baseline, overlapped_process):
        for key in ("sent", "delivered", "dropped", "forwarded_out",
                    "ingressed"):
            assert overlapped_process.stat(key) == baseline.stat(key), key


class TestStalls:
    def test_overlapped_stalls_strictly_below_barrier(self, baseline,
                                                      overlapped_inline):
        # Barrier: every region waits on every other region each round.
        # Overlapped: every region waits only on its ring neighbors.
        assert 0 < overlapped_inline.sync_stalls < baseline.sync_stalls

    def test_stall_counts_are_structural(self, overlapped_inline,
                                         overlapped_process):
        # The metric counts dependency edges, not wall time, so it is
        # identical across backends for the same mode.
        assert overlapped_inline.sync_stalls \
            == overlapped_process.sync_stalls

    def test_result_records_mode(self, baseline, overlapped_inline):
        assert baseline.mode == "barrier"
        assert overlapped_inline.mode == "overlapped"
        assert overlapped_inline.adaptive is False


class TestSupervisionUnderOverlap:
    # Overlapped mode calls after_round once per *region* dispatch, not
    # once per global round, so a chaos hook keyed on the round index
    # alone would kill the worker once per region — make it one-shot.

    def test_killed_worker_replays_to_identical_checksum(self, baseline):
        killed = []

        def chaos(psim, round_index, now):
            if round_index == 10 and not killed:
                killed.append(round_index)
                psim.kill_worker(2)

        result = make_sim().run(until=UNTIL, backend="process",
                                mode="overlapped", after_round=chaos)
        assert result.restarts == 1
        assert result.checksum == baseline.checksum

    def test_kill_near_the_end(self, baseline):
        killed = []

        def chaos(psim, round_index, now):
            if round_index == baseline.rounds - 2 and not killed:
                killed.append(round_index)
                psim.kill_worker(0)

        result = make_sim().run(until=UNTIL, backend="process",
                                mode="overlapped", after_round=chaos)
        assert result.restarts == 1
        assert result.checksum == baseline.checksum


class TestArguments:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ParallelError):
            make_sim().run(until=UNTIL, backend="inline", mode="psychic")

    def test_two_region_overlap(self):
        # Two regions share one boundary; neighbor-gating degenerates to
        # the barrier but must still run to completion and match.
        build = partial(build_star_region, leaves=LEAVES, messages=80,
                        until=UNTIL, cross_fraction=0.3)
        partition = star_ring_partition(2, leaves=LEAVES)
        base = ParallelSimulation(partition, build, seed=5,
                                  telemetry=TELEMETRY).run(
            until=UNTIL, backend="inline")
        over = ParallelSimulation(star_ring_partition(2, leaves=LEAVES),
                                  build, seed=5, telemetry=TELEMETRY).run(
            until=UNTIL, backend="inline", mode="overlapped")
        assert over.checksum == base.checksum

"""ParallelSimulation: rounds, backends, determinism, supervision.

The tentpole guarantees under test:

* the inline (single-shard) and process backends produce **identical**
  merged telemetry checksums for the same seed;
* repeated same-seed runs are byte-stable;
* a worker killed mid-run is revived by deterministic replay and the
  run's checksum is unchanged.
"""

from functools import partial

import pytest

from repro.errors import ParallelError, WorkerError
from repro.netsim import Partition
from repro.parallel import (
    ParallelSimulation,
    build_star_region,
    star_ring_partition,
)

REGIONS = 4
LEAVES = 3
UNTIL = 2.0

BUILD = partial(build_star_region, leaves=LEAVES, messages=120,
                until=UNTIL, cross_fraction=0.3)
TELEMETRY = {"sample_rate": 1.0, "seed": 7}


def make_sim(seed=11, telemetry=TELEMETRY):
    partition = star_ring_partition(REGIONS, leaves=LEAVES)
    return ParallelSimulation(partition, BUILD, seed=seed,
                              telemetry=telemetry)


@pytest.fixture(scope="module")
def inline_result():
    return make_sim().run(until=UNTIL, backend="inline")


class TestRounds:
    def test_round_count_follows_lookahead(self, inline_result):
        partition = star_ring_partition(REGIONS, leaves=LEAVES)
        expected = -(-UNTIL // partition.lookahead)  # ceil
        assert inline_result.rounds == expected
        assert inline_result.horizon == partition.lookahead

    def test_workload_is_delivered(self, inline_result):
        sent = inline_result.stat("sent")
        assert sent == REGIONS * 120
        # the open-loop workload lands almost entirely inside the run
        assert inline_result.stat("delivered") >= sent * 0.95
        assert inline_result.stat("dropped") == 0

    def test_cross_region_traffic_flowed(self, inline_result):
        forwarded = inline_result.stat("forwarded_out")
        ingressed = inline_result.stat("ingressed")
        assert forwarded > 0
        # every ingress has a matching egress; tuples arriving past the
        # end of the run (leftovers or injected beyond ``until``) don't
        assert 0 < ingressed <= forwarded

    def test_per_region_reports(self, inline_result):
        assert sorted(inline_result.regions) == list(range(REGIONS))
        for report in inline_result.regions.values():
            assert report["executed"] > 0
            assert report["now"] == UNTIL
            assert report["rounds"] == inline_result.rounds

    def test_horizon_cannot_exceed_lookahead(self):
        psim = make_sim()
        lookahead = psim.partition.lookahead
        with pytest.raises(ParallelError):
            psim.run(until=UNTIL, horizon=lookahead * 2)

    def test_smaller_horizon_preserves_results(self, inline_result):
        psim = make_sim()
        half = psim.partition.lookahead / 2
        result = psim.run(until=UNTIL, backend="inline", horizon=half)
        assert result.rounds == inline_result.rounds * 2
        assert result.stat("delivered") == inline_result.stat("delivered")
        assert result.checksum == inline_result.checksum

    def test_rejects_bad_arguments(self):
        psim = make_sim()
        with pytest.raises(ParallelError):
            psim.run(until=0.0)
        with pytest.raises(ParallelError):
            psim.run(until=1.0, backend="threads")


class TestDeterminism:
    def test_inline_checksum_is_stable_across_runs(self, inline_result):
        again = make_sim().run(until=UNTIL, backend="inline")
        assert again.checksum == inline_result.checksum
        assert again.executed == inline_result.executed

    def test_process_backend_matches_single_shard_baseline(
            self, inline_result):
        result = make_sim().run(until=UNTIL, backend="process")
        assert result.checksum == inline_result.checksum
        assert result.executed == inline_result.executed
        assert result.stat("delivered") == inline_result.stat("delivered")

    def test_different_seed_changes_the_trace(self, inline_result):
        other = make_sim(seed=12).run(until=UNTIL, backend="inline")
        assert other.checksum != inline_result.checksum

    def test_sampled_telemetry_is_deterministic_too(self):
        sampled = {"sample_rate": 0.25, "seed": 3,
                   "categories": {"net.hop": 0.05}}
        first = make_sim(telemetry=sampled).run(until=UNTIL,
                                                backend="inline")
        second = make_sim(telemetry=sampled).run(until=UNTIL,
                                                 backend="process")
        assert first.checksum == second.checksum
        assert len(first.records) == len(second.records)

    def test_merged_records_are_ordered(self, inline_result):
        from repro.telemetry.merge import record_time
        keys = [(record_time(r), r["region"], r["seq"])
                for r in inline_result.records]
        assert keys == sorted(keys)
        assert {r["region"] for r in inline_result.records} \
            == set(range(REGIONS))

    def test_without_telemetry_no_checksum(self):
        result = make_sim(telemetry=None).run(until=UNTIL, backend="inline")
        assert result.checksum is None
        assert result.records == []


class TestSupervision:
    def test_killed_worker_is_revived_with_identical_checksum(
            self, inline_result):
        def chaos(psim, round_index, now):
            if round_index == 3:
                psim.kill_worker(2)

        result = make_sim().run(until=UNTIL, backend="process",
                                after_round=chaos)
        assert result.restarts == 1
        assert result.checksum == inline_result.checksum
        assert result.executed == inline_result.executed

    def test_kill_during_final_collect_is_survived(self, inline_result):
        total_rounds = inline_result.rounds

        def chaos(psim, round_index, now):
            if round_index == total_rounds - 1:
                psim.kill_worker(0)

        result = make_sim().run(until=UNTIL, backend="process",
                                after_round=chaos)
        assert result.restarts == 1
        assert result.checksum == inline_result.checksum

    def test_multiple_kills(self, inline_result):
        def chaos(psim, round_index, now):
            if round_index in (1, 5):
                psim.kill_worker(round_index % REGIONS)

        result = make_sim().run(until=UNTIL, backend="process",
                                after_round=chaos)
        assert result.restarts == 2
        assert result.checksum == inline_result.checksum

    def test_inline_backend_has_nothing_to_kill(self):
        def chaos(psim, round_index, now):
            if round_index == 0:
                psim.kill_worker(0)

        with pytest.raises(ParallelError):
            make_sim().run(until=UNTIL, backend="inline",
                           after_round=chaos)

    def test_worker_exception_surfaces_as_worker_error(self):
        def broken_build(region, sim, partition, seed):
            raise RuntimeError("boom in region build")

        partition = star_ring_partition(2, leaves=2)
        psim = ParallelSimulation(partition, broken_build)
        with pytest.raises(WorkerError) as excinfo:
            psim.run(until=1.0, backend="inline")
        assert "boom in region build" in str(excinfo.value)


class TestResultSurface:
    def test_events_per_sec_positive(self, inline_result):
        assert inline_result.events_per_sec > 0
        assert inline_result.wall_seconds > 0

    def test_backend_recorded(self, inline_result):
        assert inline_result.backend == "inline"
        assert inline_result.until == UNTIL

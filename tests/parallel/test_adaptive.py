"""Adaptive lookahead: wider horizons, same simulation.

Conservative correctness is the whole game: a region may only run past
the fixed cadence when every other region *provably* cannot egress a
tuple that would arrive inside the widened window.  These tests pin

* the collapse case — zero cross traffic with a declared (empty)
  cross-send schedule lets every horizon extend straight to ``until``;
* equivalence — adaptive runs deliver the identical order-invariant
  delivery digest as the fixed cadence, across backends and exchange
  modes, including workloads with same-instant boundary arrivals well
  inside the widened horizons;
* conservatism — no run ever schedules into a region's past (the
  kernel raises ``ClockError`` on any violation, so completing at all
  is the assertion).
"""

from functools import partial

import pytest

from repro.parallel import (
    ParallelSimulation,
    build_lean_star_region,
    lean_star_partition,
)

REGIONS = 4
UNTIL = 10.0
BOUNDARY_LATENCY = 0.05


def lean_sim(seed=11, **kwargs):
    defaults = dict(leaves=120, messages=1200, until=UNTIL, cross_every=5)
    defaults.update(kwargs)
    build = partial(build_lean_star_region, **defaults)
    partition = lean_star_partition(REGIONS,
                                    boundary_latency=BOUNDARY_LATENCY)
    return ParallelSimulation(partition, build, seed=seed)


def digests(result):
    return tuple(result.regions[r]["stats"]["digest"]
                 for r in sorted(result.regions))


@pytest.fixture(scope="module")
def fixed_cadence():
    return lean_sim().run(UNTIL, backend="inline")


class TestZeroCrossCollapse:
    def test_declared_empty_schedule_collapses_rounds(self):
        base = lean_sim(cross_every=0).run(UNTIL, backend="inline")
        adaptive = lean_sim(cross_every=0, declare_cross=True).run(
            UNTIL, backend="inline", adaptive=True)
        assert base.rounds == 200  # until / boundary latency
        assert adaptive.rounds <= 3
        assert adaptive.stat("delivered") == base.stat("delivered")
        assert digests(adaptive) == digests(base)

    def test_collapse_holds_under_overlapped_exchange(self):
        base = lean_sim(cross_every=0).run(UNTIL, backend="inline")
        adaptive = lean_sim(cross_every=0, declare_cross=True).run(
            UNTIL, backend="inline", mode="overlapped", adaptive=True)
        assert adaptive.rounds < base.rounds / 10
        assert digests(adaptive) == digests(base)

    def test_undeclared_scenario_cannot_collapse(self):
        # Without the promise the floor is the next pending event, so
        # horizons stay pinned to the event cadence — correctness over
        # optimism.
        adaptive = lean_sim(cross_every=0).run(
            UNTIL, backend="inline", adaptive=True)
        assert adaptive.rounds > 50


class TestAdaptiveEquivalence:
    @pytest.mark.parametrize("backend", ["inline", "process"])
    @pytest.mark.parametrize("mode", ["barrier", "overlapped"])
    def test_digest_matches_fixed_cadence(self, fixed_cadence, backend,
                                          mode):
        adaptive = lean_sim(declare_cross=True).run(
            UNTIL, backend=backend, mode=mode, adaptive=True)
        assert adaptive.stat("delivered") == fixed_cadence.stat("delivered")
        assert adaptive.stat("dropped") == 0
        assert digests(adaptive) == digests(fixed_cadence)

    def test_adaptive_without_declaration_also_matches(self, fixed_cadence):
        adaptive = lean_sim().run(UNTIL, backend="inline", adaptive=True)
        assert digests(adaptive) == digests(fixed_cadence)

    def test_result_records_adaptive_flag(self, fixed_cadence):
        adaptive = lean_sim(declare_cross=True).run(
            UNTIL, backend="inline", adaptive=True)
        assert adaptive.adaptive is True
        assert fixed_cadence.adaptive is False


class TestSameInstantBoundaryArrivals:
    """Every region cross-sends on the same global tick schedule, so
    boundary tuples from different origins arrive at identical instants
    — inside horizons the declaration has widened.  The deterministic
    injection order (arrival, origin region, seq) must keep the digest
    stable across every execution strategy."""

    def runs(self):
        kwargs = dict(leaves=60, messages=600, cross_every=2,
                      declare_cross=True)
        base = lean_sim(**kwargs).run(UNTIL, backend="inline")
        yield lean_sim(**kwargs).run(UNTIL, backend="process",
                                     adaptive=True)
        yield lean_sim(**kwargs).run(UNTIL, backend="process",
                                     mode="overlapped", adaptive=True)
        yield lean_sim(**kwargs).run(UNTIL, backend="inline",
                                     mode="overlapped", adaptive=True)
        self.base = base

    def test_dense_simultaneous_arrivals_stay_deterministic(self):
        results = list(self.runs())
        reference = digests(self.base)
        assert self.base.stat("ingressed") > 0
        for result in results:
            assert digests(result) == reference
            assert result.stat("delivered") == self.base.stat("delivered")


class TestAdaptiveWidensAtSparseTraffic:
    def test_sparse_declared_traffic_needs_fewer_rounds(self):
        sparse = dict(leaves=120, messages=40, cross_every=20,
                      declare_cross=True)
        base = lean_sim(**sparse).run(UNTIL, backend="inline")
        adaptive = lean_sim(**sparse).run(UNTIL, backend="inline",
                                          adaptive=True)
        assert adaptive.rounds < base.rounds
        assert digests(adaptive) == digests(base)

"""The memory-lean streaming scenario: columnar leaves, streamed
workload, formula-backed partition, order-invariant digest."""

import tracemalloc
from functools import partial

import pytest

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim import CompactPartition
from repro.parallel import (
    ParallelSimulation,
    build_lean_star_region,
    build_star_region,
    lean_star_partition,
    star_ring_partition,
)
from repro.parallel.scenario import (
    _StarRingResolver,
    hub_name,
    leaf_index,
    leaf_name,
)

UNTIL = 10.0


def lean_sim(seed=11, regions=4, **kwargs):
    defaults = dict(leaves=100, messages=1000, until=UNTIL, cross_every=5)
    defaults.update(kwargs)
    build = partial(build_lean_star_region, **defaults)
    return ParallelSimulation(
        lean_star_partition(regions, boundary_latency=0.05), build,
        seed=seed)


class TestResolver:
    def test_parses_systematic_names(self):
        resolver = _StarRingResolver(8)
        assert resolver("hub3") == 3
        assert resolver("n5_1417") == 5
        assert resolver("n0_0") == 0

    def test_declines_foreign_names(self):
        resolver = _StarRingResolver(8)
        assert resolver("gateway") is None
        assert resolver("hubX") is None
        assert resolver("nope_3") is None

    def test_leaf_index_inverts_leaf_name(self):
        assert leaf_index(leaf_name(3, 1417)) == 1417


class TestLeanPartition:
    def test_region_of_is_a_formula(self):
        partition = lean_star_partition(4)
        assert isinstance(partition, CompactPartition)
        assert partition.region_of(hub_name(2)) == 2
        assert partition.region_of(leaf_name(3, 999_999)) == 3

    def test_unknown_node_raises(self):
        partition = lean_star_partition(4)
        with pytest.raises(NetworkError):
            partition.region_of("mystery")

    def test_out_of_range_region_raises(self):
        partition = lean_star_partition(4)
        with pytest.raises(NetworkError):
            partition.region_of(leaf_name(7, 0))

    def test_assignment_memory_is_constant(self):
        # The million-node claim in miniature: the partition stores no
        # per-node state, so any leaf count costs the same.
        small, big = lean_star_partition(4), lean_star_partition(4)
        assert len(small._node_region) == len(big._node_region) == 0
        big.region_of(leaf_name(0, 10**9))  # resolver, not a dict

    def test_boundary_ring(self):
        partition = lean_star_partition(4, boundary_latency=0.07)
        assert len(partition.boundaries) == 4
        assert partition.lookahead == pytest.approx(0.07)
        assert partition.region_distance(0, 2) == pytest.approx(0.14)


class TestLeanWorkload:
    def test_all_messages_delivered_no_drops(self):
        result = lean_sim().run(UNTIL, backend="inline")
        assert result.stat("sent") == 4 * 1000
        assert result.stat("dropped") == 0
        # The tail of the open-loop workload may still be in flight at
        # the horizon; everything else must have landed.
        assert result.stat("delivered") >= result.stat("sent") * 0.99

    def test_cross_traffic_flows_between_regions(self):
        result = lean_sim().run(UNTIL, backend="inline")
        assert result.stat("forwarded_out") > 0
        assert result.stat("ingressed") >= result.stat("forwarded_out") * 0.9

    def test_digest_identical_across_backends(self):
        inline = lean_sim().run(UNTIL, backend="inline")
        process = lean_sim().run(UNTIL, backend="process")
        overlapped = lean_sim().run(UNTIL, backend="process",
                                    mode="overlapped")
        ref = [inline.regions[r]["stats"]["digest"]
               for r in sorted(inline.regions)]
        for result in (process, overlapped):
            assert [result.regions[r]["stats"]["digest"]
                    for r in sorted(result.regions)] == ref

    def test_different_seed_changes_digest(self):
        a = lean_sim(seed=11).run(UNTIL, backend="inline")
        b = lean_sim(seed=12).run(UNTIL, backend="inline")
        assert [a.regions[r]["stats"]["digest"] for r in a.regions] \
            != [b.regions[r]["stats"]["digest"] for r in b.regions]

    def test_leaf_counters_account_for_every_delivery(self):
        result = lean_sim().run(UNTIL, backend="inline")
        for region in result.regions.values():
            stats = region["stats"]
            assert stats["max_leaf_delivered"] >= 1
            assert stats["leaves"] == 100

    def test_zero_messages_edge(self):
        result = lean_sim(messages=0).run(UNTIL, backend="inline")
        assert result.stat("sent") == 0
        assert result.stat("delivered") == 0

    def test_single_stream_degenerate(self):
        base = lean_sim().run(UNTIL, backend="inline")
        serial = lean_sim(streams=1).run(UNTIL, backend="inline")
        # Stream count is an implementation knob: the tick times and rng
        # draw order are unchanged, so the workload is identical.
        assert [serial.regions[r]["stats"]["digest"]
                for r in sorted(serial.regions)] \
            == [base.regions[r]["stats"]["digest"]
                for r in sorted(base.regions)]


class TestMemoryFootprint:
    def _traced_build(self, builder):
        tracemalloc.start()
        try:
            builder()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_lean_region_is_order_of_magnitude_leaner(self):
        leaves = 20_000

        def classic():
            partition = star_ring_partition(4, leaves=leaves)
            build_star_region(0, Simulator(), partition, 11,
                              leaves=leaves, messages=0, until=1.0)

        def lean():
            partition = lean_star_partition(4)
            build_lean_star_region(0, Simulator(), partition, 11,
                                   leaves=leaves, messages=0, until=1.0)

        classic_bytes = self._traced_build(classic)
        lean_bytes = self._traced_build(lean)
        assert lean_bytes < classic_bytes / 20
        # Columnar state: ~4 bytes per leaf plus constant overhead.
        assert lean_bytes / leaves < 64

    def test_pending_events_stay_bounded_by_streams(self):
        sim = Simulator()
        partition = lean_star_partition(4)
        build_lean_star_region(0, sim, partition, 11, leaves=1000,
                               messages=500_000, until=10.0, streams=32)
        # Half a million sends pend as 32 stream events, not 500k.
        assert len(sim._queue) == 32

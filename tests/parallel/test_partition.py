"""Partition + RegionNetwork: assignment, lookahead, boundary delivery."""

import pytest

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim import (
    Boundary,
    Message,
    MessageIdAllocator,
    Partition,
    RegionNetwork,
    use_allocator,
)


def two_region_partition():
    partition = Partition(2)
    for region in (0, 1):
        partition.assign(f"hub{region}", region)
        for index in range(2):
            partition.assign(f"n{region}_{index}", region)
    partition.add_boundary("hub0", "hub1", latency=0.01)
    return partition


def build_region(partition, region, seed=0):
    use_allocator(MessageIdAllocator(region * 1_000_000 + 1))
    sim = Simulator()
    net = RegionNetwork(sim, partition, region, seed=seed)
    net.add_node(f"hub{region}")
    delivered = []
    for index in range(2):
        node = net.add_node(f"n{region}_{index}")
        node.bind_endpoint(
            "svc", lambda node, msg: delivered.append(msg))
        net.add_link(f"hub{region}", f"n{region}_{index}", latency=0.001)
    return sim, net, delivered


def drive_rounds(partition, sims, nets, until):
    """Minimal coordinator: fixed-lookahead barrier rounds."""
    horizon = partition.lookahead
    now = 0.0
    inject = {region: [] for region in nets}
    while now < until:
        boundary = min(now + horizon, until)
        for region, net in nets.items():
            if inject[region]:
                sims[region].schedule_many(
                    [(rec[4], net.ingress, (rec,)) for rec in inject[region]],
                    absolute=True)
            sims[region].run(until=boundary, inclusive=boundary >= until)
        inject = {region: [] for region in nets}
        for net in nets.values():
            for record in net.outbox:
                inject[record[2]].append(record)
            net.outbox = []
        now = boundary


class TestPartition:
    def test_assign_and_region_of(self):
        partition = Partition(2)
        partition.assign("a", 0)
        partition.assign("b", 1)
        assert partition.region_of("a") == 0
        assert partition.nodes_in(1) == ["b"]

    def test_unassigned_node_raises(self):
        partition = Partition(1)
        with pytest.raises(NetworkError):
            partition.region_of("ghost")

    def test_reassignment_conflict_raises(self):
        partition = Partition(2)
        partition.assign("a", 0)
        with pytest.raises(NetworkError):
            partition.assign("a", 1)

    def test_boundary_must_cross_regions(self):
        partition = Partition(2)
        partition.assign("a", 0)
        partition.assign("b", 0)
        with pytest.raises(NetworkError):
            partition.add_boundary("a", "b", latency=0.01)

    def test_boundary_latency_must_be_positive(self):
        partition = two_region_partition()
        with pytest.raises(NetworkError):
            partition.add_boundary("n0_0", "n1_0", latency=0.0)

    def test_lookahead_is_min_boundary_latency(self):
        partition = two_region_partition()
        partition.add_boundary("n0_0", "n1_0", latency=0.005)
        assert partition.lookahead == 0.005

    def test_lookahead_without_boundaries_raises(self):
        partition = Partition(1)
        partition.assign("a", 0)
        with pytest.raises(NetworkError):
            partition.lookahead

    def test_validate_rejects_empty_region(self):
        partition = Partition(2)
        partition.assign("a", 0)
        with pytest.raises(NetworkError):
            partition.validate()

    def test_validate_rejects_unreachable_region(self):
        partition = Partition(3)
        for region in range(3):
            partition.assign(f"g{region}", region)
        partition.add_boundary("g0", "g1", latency=0.01)
        with pytest.raises(NetworkError):
            partition.validate()

    def test_next_hop_routes_via_min_latency(self):
        partition = Partition(3)
        for region in range(3):
            partition.assign(f"g{region}", region)
        direct = partition.add_boundary("g0", "g2", latency=0.05)
        partition.add_boundary("g0", "g1", latency=0.01)
        partition.add_boundary("g1", "g2", latency=0.01)
        # two cheap hops (0.02) beat the direct boundary (0.05)
        assert partition.next_hop(0, 2).peer(0)[0] == 1
        assert isinstance(direct, Boundary)

    def test_boundary_gateway_and_peer(self):
        partition = two_region_partition()
        boundary = partition.boundaries[0]
        assert boundary.gateway(0) == "hub0"
        assert boundary.peer(0) == (1, "hub1")
        with pytest.raises(NetworkError):
            boundary.gateway(7)


class TestRegionNetwork:
    def test_rejects_foreign_node(self):
        partition = two_region_partition()
        sim = Simulator()
        net = RegionNetwork(sim, partition, 0)
        with pytest.raises(NetworkError):
            net.add_node("hub1")

    def test_local_send_behaves_like_network(self):
        partition = two_region_partition()
        sim, net, delivered = build_region(partition, 0)
        net.send(Message(source="n0_0", destination="n0_1", endpoint="svc"))
        sim.run(until=1.0)
        assert len(delivered) == 1
        assert net.outbox == []
        assert net.stats.delivered == 1

    def test_cross_send_egresses_a_plain_tuple(self):
        partition = two_region_partition()
        sim, net, _ = build_region(partition, 0)
        net.send(Message(source="n0_0", destination="n1_1", endpoint="svc"))
        sim.run(until=1.0)
        assert len(net.outbox) == 1
        record = net.outbox[0]
        assert record[0] == "msg"
        assert record[1:4] == (0, 1, "hub1")  # origin, to_region, entry node
        assert record[4] >= partition.lookahead  # arrival respects lookahead
        assert record[7] == "n1_1"
        assert net.forwarded_out == 1
        assert net.in_flight == 0
        assert net.stats.sent == 1 and net.stats.delivered == 0

    def test_cross_delivery_end_to_end(self):
        partition = two_region_partition()
        sims, nets, boxes = {}, {}, {}
        for region in (0, 1):
            sims[region], nets[region], boxes[region] = build_region(
                partition, region)
        nets[0].send(Message(source="n0_0", destination="n1_1",
                             endpoint="svc"))
        drive_rounds(partition, sims, nets, until=1.0)
        assert len(boxes[1]) == 1
        message = boxes[1][0]
        assert message.source == "n0_0"
        # end-to-end latency spans both regions and the boundary
        latency = nets[1].stats.mean_latency
        assert latency > partition.lookahead
        assert nets[1].ingressed == 1

    def test_ingress_preserves_sent_at_and_origin(self):
        partition = two_region_partition()
        sims, nets, boxes = {}, {}, {}
        for region in (0, 1):
            sims[region], nets[region], boxes[region] = build_region(
                partition, region)
        nets[0].send(Message(source="n0_0", destination="n1_0",
                             endpoint="svc", payload={"k": 1}))
        drive_rounds(partition, sims, nets, until=1.0)
        message = boxes[1][0]
        assert message.payload == {"k": 1}
        assert message.sent_at == 0.0
        origin_region, origin_id = message.headers["x-origin"]
        assert origin_region == 0

    def test_ingress_rejects_wrong_region(self):
        partition = two_region_partition()
        sim, net, _ = build_region(partition, 0)
        record = ("msg", 1, 1, "hub1", 0.5, 0, "n1_0", "n1_1", "svc",
                  None, 256, {}, 0.0, (1, 1))
        with pytest.raises(NetworkError):
            net.ingress(record)

    def test_multi_region_forwarding_through_middle_region(self):
        partition = Partition(3)
        for region in range(3):
            partition.assign(f"hub{region}", region)
            partition.assign(f"n{region}_0", region)
            partition.assign(f"n{region}_1", region)
        partition.add_boundary("hub0", "hub1", latency=0.01)
        partition.add_boundary("hub1", "hub2", latency=0.01)
        sims, nets, boxes = {}, {}, {}
        for region in range(3):
            use_allocator(MessageIdAllocator(region * 1_000_000 + 1))
            sim = Simulator()
            net = RegionNetwork(sim, partition, region, seed=region)
            net.add_node(f"hub{region}")
            delivered = []
            for index in range(2):
                node = net.add_node(f"n{region}_{index}")
                node.bind_endpoint(
                    "svc", lambda node, msg: delivered.append(msg))
                net.add_link(f"hub{region}", f"n{region}_{index}",
                             latency=0.001)
            sims[region], nets[region], boxes[region] = sim, net, delivered
        nets[0].send(Message(source="n0_0", destination="n2_1",
                             endpoint="svc"))
        drive_rounds(partition, sims, nets, until=1.0)
        assert len(boxes[2]) == 1
        # region 1 forwarded without delivering
        assert nets[1].ingressed == 1
        assert nets[1].forwarded_out == 1
        assert nets[1].stats.delivered == 0

    def test_cross_send_from_downed_source_drops(self):
        partition = two_region_partition()
        sim, net, _ = build_region(partition, 0)
        net.node("n0_0").crash()
        net.send(Message(source="n0_0", destination="n1_1", endpoint="svc"))
        sim.run(until=1.0)
        assert net.outbox == []
        assert net.stats.dropped_node_down == 1

    def test_cross_send_without_route_to_gateway_drops(self):
        partition = two_region_partition()
        use_allocator(MessageIdAllocator(1))
        sim = Simulator()
        net = RegionNetwork(sim, partition, 0)
        net.add_node("hub0")
        net.add_node("n0_0")  # deliberately not linked to the hub
        net.send(Message(source="n0_0", destination="n1_1", endpoint="svc"))
        sim.run(until=1.0)
        assert net.stats.dropped_no_route == 1
        assert net.in_flight == 0

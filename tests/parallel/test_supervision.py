"""Production-shaped worker supervision.

Heartbeat liveness, bounded deterministic-backoff revival, graceful
degradation to the inline backend, and shutdown escalation — all
surfaced in :class:`ParallelResult`, never swallowed.
"""

import time
from functools import partial

import pytest

from repro.errors import ParallelError, WorkerTimeoutError
from repro.parallel import (
    ParallelSimulation,
    SupervisionPolicy,
    build_star_region,
    star_ring_partition,
)
from repro.parallel.coordinator import _ProcessWorker, _mp_context

REGIONS = 2
LEAVES = 2
UNTIL = 1.0

BUILD = partial(build_star_region, leaves=LEAVES, messages=40,
                until=UNTIL, cross_fraction=0.3)
TELEMETRY = {"sample_rate": 1.0, "seed": 7}

FAST = SupervisionPolicy(shutdown_timeout=2.0, heartbeat_interval=0.02,
                         max_revivals=2, backoff_base=0.0)


def make_sim(policy=FAST, seed=11):
    partition = star_ring_partition(REGIONS, leaves=LEAVES)
    return ParallelSimulation(partition, BUILD, seed=seed,
                              telemetry=TELEMETRY, supervision=policy)


class TestBackoffPolicy:
    def test_deterministic_across_calls(self):
        policy = SupervisionPolicy(seed=5)
        assert policy.backoff(1, 2) == policy.backoff(1, 2)

    def test_grows_exponentially_without_jitter(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_factor=2.0,
                                   backoff_max=10.0, backoff_jitter=0.0)
        assert [policy.backoff(0, a) for a in range(3)] == [0.1, 0.2, 0.4]

    def test_capped_at_backoff_max(self):
        policy = SupervisionPolicy(backoff_base=1.0, backoff_factor=10.0,
                                   backoff_max=1.5, backoff_jitter=0.0)
        assert policy.backoff(0, 5) == 1.5

    def test_jitter_bounded_and_seed_dependent(self):
        base = SupervisionPolicy(backoff_base=1.0, backoff_factor=1.0,
                                 backoff_max=10.0, backoff_jitter=0.1)
        delay = base.backoff(3, 1)
        assert 1.0 <= delay <= 1.1
        other = SupervisionPolicy(backoff_base=1.0, backoff_factor=1.0,
                                  backoff_max=10.0, backoff_jitter=0.1,
                                  seed=99)
        assert other.backoff(3, 1) != delay


class TestRevival:
    def test_revival_is_recorded_in_the_result(self):
        def chaos(psim, round_index, now):
            if round_index == 1:
                psim.kill_worker(1)

        baseline = make_sim().run(until=UNTIL, backend="inline")
        result = make_sim().run(until=UNTIL, backend="process",
                                after_round=chaos)
        assert result.restarts == 1
        assert result.revival_attempts == 1
        assert result.degraded == ()
        events = [e["event"] for e in result.supervision]
        assert events.count("revived") == 1
        assert result.checksum == baseline.checksum

    def test_clean_run_reports_no_supervision_events(self):
        result = make_sim().run(until=UNTIL, backend="process")
        assert result.restarts == 0
        assert result.revival_attempts == 0
        assert result.supervision == []
        assert result.degraded == ()


class TestDegradation:
    @staticmethod
    def _chaos_with_unrevivable_worker(psim, round_index, now):
        if round_index == 1:
            worker = psim._workers[1]
            worker.kill()

            def refuse_respawn():
                raise OSError("spawn refused")

            worker.respawn = refuse_respawn

    def test_exhausted_revivals_degrade_to_inline(self):
        baseline = make_sim().run(until=UNTIL, backend="inline")
        result = make_sim().run(
            until=UNTIL, backend="process",
            after_round=self._chaos_with_unrevivable_worker)
        assert result.degraded == (1,)
        assert result.restarts == 0
        assert result.revival_attempts == FAST.max_revivals
        events = [e["event"] for e in result.supervision]
        assert events.count("revival-failed") == FAST.max_revivals
        assert events[-1] == "degraded"
        # The degraded region replays to the exact lost state: the
        # merged trace is byte-identical to the healthy baseline.
        assert result.checksum == baseline.checksum

    def test_degradation_disabled_fails_the_run(self):
        policy = SupervisionPolicy(shutdown_timeout=2.0,
                                   heartbeat_interval=0.02,
                                   max_revivals=1, backoff_base=0.0,
                                   degrade_to_inline=False)
        with pytest.raises(ParallelError, match="revival"):
            make_sim(policy).run(
                until=UNTIL, backend="process",
                after_round=self._chaos_with_unrevivable_worker)


class TestHeartbeatAndShutdown:
    def test_silent_live_worker_trips_reply_timeout(self):
        partition = star_ring_partition(REGIONS, leaves=LEAVES)
        policy = SupervisionPolicy(heartbeat_interval=0.02,
                                   reply_timeout=0.3,
                                   shutdown_timeout=2.0)
        worker = _ProcessWorker(_mp_context(), 0, partition, BUILD, 0,
                                None, policy=policy)
        try:
            started = time.monotonic()
            # No command was sent, so the worker stays silent forever;
            # the heartbeat loop must escalate instead of hanging.
            with pytest.raises(WorkerTimeoutError):
                worker.recv()
            assert time.monotonic() - started < 5.0
            assert not worker.process.is_alive()
        finally:
            worker.close()

    def test_close_escalation_reports_outcome(self):
        partition = star_ring_partition(REGIONS, leaves=LEAVES)
        worker = _ProcessWorker(
            _mp_context(), 0, partition, BUILD, 0, None,
            policy=SupervisionPolicy(shutdown_timeout=2.0))
        outcome = worker.close()
        assert outcome in ("clean", "terminated", "killed")
        assert not worker.process.is_alive()

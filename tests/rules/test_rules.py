"""Unit tests for the FLO/C-style rule system."""

import pytest

from repro.errors import RuleCycleError, RuleError
from repro.kernel import Invocation, Registry
from repro.rules import (
    CallAction,
    CallPattern,
    Rule,
    RuleEngine,
    RuleOperator,
    check_acyclic,
    is_acyclic,
    parse_rule,
    parse_rules,
)

from tests.helpers import make_counter, make_echo


class TestPatterns:
    def test_parse(self):
        pattern = CallPattern.parse("billing.charge")
        assert pattern.component == "billing"
        assert pattern.matches("billing", "charge")
        assert not pattern.matches("billing", "refund")

    def test_wildcards(self):
        assert CallPattern.parse("*.charge").matches("anything", "charge")
        assert CallPattern.parse("billing.*").matches("billing", "anything")

    def test_bad_patterns_rejected(self):
        for text in ("billing", "a.b.c", ".charge", "billing."):
            with pytest.raises(RuleError):
                CallPattern.parse(text)

    def test_action_must_be_concrete(self):
        with pytest.raises(RuleError):
            CallAction.parse("*.log")


class TestRuleValidation:
    def test_implies_needs_action(self):
        with pytest.raises(RuleError):
            Rule("r", CallPattern.parse("a.b"), RuleOperator.IMPLIES)

    def test_permitted_if_needs_guard(self):
        with pytest.raises(RuleError):
            Rule("r", CallPattern.parse("a.b"), RuleOperator.PERMITTED_IF)


class TestGrammar:
    def test_parse_when_implies(self):
        rule = parse_rule("when billing.charge implies audit.log")
        assert rule.operator is RuleOperator.IMPLIES
        assert str(rule.trigger) == "billing.charge"
        assert str(rule.action) == "audit.log"

    def test_parse_implies_before_and_later(self):
        before = parse_rule("when a.x impliesBefore b.y")
        later = parse_rule("when a.x impliesLater b.y")
        assert before.operator is RuleOperator.IMPLIES_BEFORE
        assert later.operator is RuleOperator.IMPLIES_LATER

    def test_parse_permit(self):
        rule = parse_rule("permit admin.shutdown if is_admin",
                          guards={"is_admin": lambda inv: True})
        assert rule.operator is RuleOperator.PERMITTED_IF

    def test_parse_wait(self):
        rule = parse_rule("wait queue.pop until not_empty",
                          guards={"not_empty": lambda inv: True})
        assert rule.operator is RuleOperator.WAIT_UNTIL

    def test_unknown_guard_rejected(self):
        with pytest.raises(RuleError, match="unknown guard"):
            parse_rule("permit a.b if ghost")

    def test_garbage_rejected(self):
        with pytest.raises(RuleError):
            parse_rule("whenever pigs.fly")

    def test_multi_line_script(self):
        rules = parse_rules(
            """
            # comment line
            when billing.charge implies audit.log

            when billing.refund implies audit.log  # trailing comment
            """
        )
        assert len(rules) == 2
        assert rules[0].name != rules[1].name


class TestCycleCheck:
    def rule(self, trigger, action, name=""):
        return Rule(name or f"{trigger}->{action}",
                    CallPattern.parse(trigger), RuleOperator.IMPLIES,
                    action=CallAction.parse(action))

    def test_acyclic_chain_accepted(self):
        rules = [
            self.rule("a.x", "b.y"),
            self.rule("b.y", "c.z"),
        ]
        check_acyclic(rules)
        assert is_acyclic(rules)

    def test_direct_cycle_rejected(self):
        rules = [
            self.rule("a.x", "b.y"),
            self.rule("b.y", "a.x"),
        ]
        with pytest.raises(RuleCycleError):
            check_acyclic(rules)

    def test_self_cycle_rejected(self):
        assert not is_acyclic([self.rule("a.x", "a.x")])

    def test_long_cycle_rejected(self):
        rules = [
            self.rule("a.x", "b.y"),
            self.rule("b.y", "c.z"),
            self.rule("c.z", "a.x"),
        ]
        assert not is_acyclic(rules)

    def test_wildcard_trigger_cycles_detected(self):
        rules = [
            Rule("w", CallPattern.parse("*.log"), RuleOperator.IMPLIES,
                 action=CallAction.parse("b.notify")),
            self.rule("b.notify", "audit.log"),
        ]
        assert not is_acyclic(rules)

    def test_guard_rules_never_cycle(self):
        rules = [
            Rule("g", CallPattern.parse("a.x"), RuleOperator.PERMITTED_IF,
                 guard=lambda inv: True),
        ]
        assert is_acyclic(rules)


class TestEngine:
    def make_world(self):
        registry = Registry()
        counter = make_counter("audit")
        echo = make_echo("billing")
        registry.register(counter)
        registry.register(echo)
        engine = RuleEngine(registry)
        return registry, engine, counter, echo

    def call(self, component, operation, *args):
        return component.provided_port("svc").invoke(Invocation(operation, args))

    def test_implies_runs_action_after(self):
        _registry, engine, counter, echo = self.make_world()
        engine.add_rule(Rule(
            "audit-echo", CallPattern.parse("billing.echo"),
            RuleOperator.IMPLIES,
            action=CallAction("audit", "increment", lambda inv: (1,)),
        ))
        assert self.call(echo, "echo", "x") == "billing:x"
        assert counter.state["total"] == 1

    def test_implies_before_runs_first(self):
        _registry, engine, counter, echo = self.make_world()
        order = []
        counter.provided_port("svc").observers.append(
            lambda phase, inv, payload: order.append("audit")
            if phase == "before" else None
        )
        echo.provided_port("svc").observers.append(
            lambda phase, inv, payload: order.append("billing-done")
            if phase == "after" else None
        )
        engine.add_rule(Rule(
            "pre-audit", CallPattern.parse("billing.echo"),
            RuleOperator.IMPLIES_BEFORE,
            action=CallAction("audit", "increment"),
        ))
        self.call(echo, "echo", "x")
        assert order.index("audit") < order.index("billing-done")

    def test_implies_later_defers(self):
        _registry, engine, counter, echo = self.make_world()
        engine.add_rule(Rule(
            "later", CallPattern.parse("billing.echo"),
            RuleOperator.IMPLIES_LATER,
            action=CallAction("audit", "increment"),
        ))
        self.call(echo, "echo", "x")
        assert counter.state["total"] == 0
        assert engine.run_deferred() == 1
        assert counter.state["total"] == 1
        assert engine.run_deferred() == 0

    def test_permitted_if_blocks(self):
        _registry, engine, _counter, echo = self.make_world()
        engine.add_rule(Rule(
            "guard", CallPattern.parse("billing.echo"),
            RuleOperator.PERMITTED_IF,
            guard=lambda inv: inv.args[0] != "forbidden",
        ))
        assert self.call(echo, "echo", "fine") == "billing:fine"
        with pytest.raises(RuleError, match="not permitted"):
            self.call(echo, "echo", "forbidden")

    def test_wait_until_buffers_and_releases(self):
        _registry, engine, _counter, echo = self.make_world()
        gate = {"open": False}
        engine.add_rule(Rule(
            "hold", CallPattern.parse("billing.echo"),
            RuleOperator.WAIT_UNTIL,
            guard=lambda inv: gate["open"],
        ))
        assert self.call(echo, "echo", "x") is None
        assert engine.waiting_count == 1
        assert echo.state["seen"] == []
        gate["open"] = True
        assert engine.poke_waiting() == 1
        assert echo.state["seen"] == ["x"]
        assert engine.waiting_count == 0

    def test_cyclic_rule_set_rejected_on_add(self):
        _registry, engine, _counter, echo = self.make_world()
        engine.add_rule(Rule(
            "r1", CallPattern.parse("billing.echo"), RuleOperator.IMPLIES,
            action=CallAction("audit", "increment"),
        ))
        with pytest.raises(RuleCycleError):
            engine.add_rule(Rule(
                "r2", CallPattern.parse("audit.increment"),
                RuleOperator.IMPLIES,
                action=CallAction("billing", "echo", lambda inv: ("loop",)),
            ))
        assert len(engine.rules) == 1  # rejected rule not kept

    def test_batch_add_is_atomic(self):
        _registry, engine, _counter, _echo = self.make_world()
        good = Rule("g", CallPattern.parse("billing.echo"),
                    RuleOperator.IMPLIES, action=CallAction("audit", "increment"))
        bad = Rule("b", CallPattern.parse("audit.increment"),
                   RuleOperator.IMPLIES,
                   action=CallAction("billing", "echo", lambda inv: ("x",)))
        with pytest.raises(RuleCycleError):
            engine.add_rules([good, bad])
        assert engine.rules == []

    def test_remove_rule(self):
        _registry, engine, counter, echo = self.make_world()
        engine.add_rule(Rule(
            "audit-echo", CallPattern.parse("billing.echo"),
            RuleOperator.IMPLIES, action=CallAction("audit", "increment"),
        ))
        engine.remove_rule("audit-echo")
        self.call(echo, "echo", "x")
        assert counter.state["total"] == 0
        with pytest.raises(RuleError):
            engine.remove_rule("audit-echo")

    def test_duplicate_rule_name_rejected(self):
        _registry, engine, _counter, _echo = self.make_world()
        rule = Rule("dup", CallPattern.parse("billing.echo"),
                    RuleOperator.IMPLIES, action=CallAction("audit", "increment"))
        engine.add_rule(rule)
        with pytest.raises(RuleError):
            engine.add_rule(Rule(
                "dup", CallPattern.parse("billing.echo"),
                RuleOperator.IMPLIES, action=CallAction("audit", "increment"),
            ))

    def test_action_args_builder_sees_trigger(self):
        _registry, engine, counter, echo = self.make_world()
        engine.add_rule(Rule(
            "sized", CallPattern.parse("billing.echo"),
            RuleOperator.IMPLIES,
            action=CallAction("audit", "increment",
                              lambda inv: (len(inv.args[0]),)),
        ))
        self.call(echo, "echo", "four")
        assert counter.state["total"] == 4

    def test_action_on_unknown_operation_raises(self):
        _registry, engine, _counter, echo = self.make_world()
        engine.add_rule(Rule(
            "broken", CallPattern.parse("billing.echo"),
            RuleOperator.IMPLIES, action=CallAction("audit", "vanish"),
        ))
        with pytest.raises(RuleError, match="no operation"):
            self.call(echo, "echo", "x")

    def test_govern_late_component(self):
        registry, engine, counter, _echo = self.make_world()
        engine.add_rule(Rule(
            "late", CallPattern.parse("late.echo"), RuleOperator.IMPLIES,
            action=CallAction("audit", "increment"),
        ))
        late = make_echo("late")
        registry.register(late)
        engine.govern("late")
        self.call(late, "echo", "x")
        assert counter.state["total"] == 1

"""Tests for the simulator-driven rule pump."""

from repro.events import Simulator
from repro.kernel import Invocation, Registry
from repro.rules import CallAction, CallPattern, Rule, RuleEngine, RuleOperator

from tests.helpers import make_counter, make_echo


def make_world():
    registry = Registry()
    counter = make_counter("audit")
    echo = make_echo("billing")
    registry.register(counter)
    registry.register(echo)
    return registry, RuleEngine(registry), counter, echo


def call(component, operation, *args):
    return component.provided_port("svc").invoke(Invocation(operation, args))


def test_pump_runs_deferred_actions_later():
    sim = Simulator()
    _registry, engine, counter, echo = make_world()
    engine.add_rule(Rule(
        "later", CallPattern.parse("billing.echo"),
        RuleOperator.IMPLIES_LATER,
        action=CallAction("audit", "increment"),
    ))
    engine.start(sim, period=0.5)
    sim.at(call, echo, "echo", "x", when=0.1)
    sim.run(until=0.3)
    assert counter.state["total"] == 0  # not yet pumped
    sim.run(until=0.6)
    assert counter.state["total"] == 1  # pumped at t=0.5
    engine.stop()


def test_pump_releases_waiting_when_guard_opens():
    sim = Simulator()
    _registry, engine, _counter, echo = make_world()
    gate = {"open": False}
    engine.add_rule(Rule(
        "hold", CallPattern.parse("billing.echo"),
        RuleOperator.WAIT_UNTIL,
        guard=lambda inv: gate["open"],
    ))
    engine.start(sim, period=0.25)
    sim.at(call, echo, "echo", "x", when=0.1)
    sim.at(lambda: gate.__setitem__("open", True), when=1.0)
    sim.run(until=0.9)
    assert echo.state["seen"] == []
    sim.run(until=1.5)
    assert echo.state["seen"] == ["x"]
    engine.stop()


def test_stop_halts_pumping():
    sim = Simulator()
    _registry, engine, counter, echo = make_world()
    engine.add_rule(Rule(
        "later", CallPattern.parse("billing.echo"),
        RuleOperator.IMPLIES_LATER,
        action=CallAction("audit", "increment"),
    ))
    engine.start(sim, period=0.5)
    engine.stop()
    sim.at(call, echo, "echo", "x", when=0.1)
    sim.run(until=5.0)
    assert counter.state["total"] == 0
    assert len(engine.deferred) == 1


def test_start_is_idempotent():
    sim = Simulator()
    _registry, engine, counter, echo = make_world()
    engine.add_rule(Rule(
        "later", CallPattern.parse("billing.echo"),
        RuleOperator.IMPLIES_LATER,
        action=CallAction("audit", "increment"),
    ))
    engine.start(sim, period=0.5)
    engine.start(sim, period=0.5)  # no double pump
    sim.at(call, echo, "echo", "x", when=0.1)
    sim.run(until=1.1)
    assert counter.state["total"] == 1

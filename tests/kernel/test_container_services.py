"""Unit tests for the remaining container services and audit trail."""

import pytest

from repro.events import Simulator
from repro.kernel import Container, DeploymentDescriptor, Invocation
from repro.netsim import Network

from tests.helpers import CounterComponent, counter_interface


def make_node(name="host", capacity=100.0):
    net = Network(Simulator())
    return net.add_node(name, capacity=capacity)


def deployed(services, config=None, node=None):
    node = node or make_node()
    container = Container(node)
    component = CounterComponent("counter")
    component.provide("svc", counter_interface())
    container.deploy(component, DeploymentDescriptor(
        "counter", services=tuple(services), config=config or {}))
    return node, container, component


class TestMetering:
    def test_metering_annotates_execution_time(self):
        node, _container, component = deployed(["metering"])
        invocation = Invocation("increment", (1,))
        component.provided_port("svc").invoke(invocation)
        assert invocation.meta["execution_time"] == pytest.approx(
            node.execution_time(1.0)
        )

    def test_metering_respects_declared_work(self):
        node, _container, component = deployed(["metering"])
        light = Invocation("increment", (1,))
        heavy = Invocation("increment", (1,), meta={"work": 50.0})
        port = component.provided_port("svc")
        port.invoke(light)
        port.invoke(heavy)
        assert heavy.meta["execution_time"] > light.meta["execution_time"]

    def test_metering_reflects_node_load(self):
        node, _container, component = deployed(["metering"])
        port = component.provided_port("svc")
        idle = Invocation("total")
        port.invoke(idle)
        node.set_background_load(0.9)
        busy = Invocation("total")
        port.invoke(busy)
        assert busy.meta["execution_time"] > idle.meta["execution_time"]


class TestPersistence:
    def test_snapshot_taken_after_each_call(self):
        _node, container, component = deployed(["persistence"])
        port = component.provided_port("svc")
        first = Invocation("increment", (5,))
        port.invoke(first)
        assert "persisted_at" in first.meta
        # The stored snapshot reflects the state after the call.
        interceptor = container._installed["counter"][0][1]
        assert interceptor.store["last_snapshot"]["total"] == 5

    def test_snapshot_updates_with_later_calls(self):
        _node, container, component = deployed(["persistence"])
        port = component.provided_port("svc")
        port.invoke(Invocation("increment", (5,)))
        port.invoke(Invocation("increment", (3,)))
        interceptor = container._installed["counter"][0][1]
        assert interceptor.store["last_snapshot"]["total"] == 8


class TestServiceStacking:
    def test_multiple_services_compose(self):
        _node, container, component = deployed(
            ["logging", "metering", "transactions"])
        port = component.provided_port("svc")
        invocation = Invocation("increment", (2,))
        assert port.invoke(invocation) == 2
        assert invocation.meta["txn"] == "committed"
        assert "execution_time" in invocation.meta
        assert any(entry[1] == "call:increment"
                   for entry in container.audit_log)

    def test_undeploy_removes_all_service_interceptors(self):
        _node, container, component = deployed(["logging", "metering"])
        port = component.provided_port("svc")
        assert len(port.interceptors) == 2
        container.undeploy("counter", stop=False)
        assert len(port.interceptors) == 0

    def test_audit_log_is_time_ordered(self):
        node, container, component = deployed(["logging"])
        port = component.provided_port("svc")
        node.sim.at(port.invoke, Invocation("total"), when=1.0)
        node.sim.run()
        times = [entry[0] for entry in container.audit_log]
        assert times == sorted(times)

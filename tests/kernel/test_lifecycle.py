"""Unit tests for the lifecycle state machine."""

import pytest

from repro.errors import LifecycleError
from repro.kernel import Lifecycle, LifecycleState


def test_initial_state_is_created():
    assert Lifecycle().state is LifecycleState.CREATED


def test_normal_progression():
    lifecycle = Lifecycle()
    lifecycle.transition(LifecycleState.INITIALIZED)
    lifecycle.transition(LifecycleState.ACTIVE)
    lifecycle.transition(LifecycleState.PASSIVE)
    lifecycle.transition(LifecycleState.ACTIVE)
    lifecycle.transition(LifecycleState.STOPPED)
    assert lifecycle.is_stopped


def test_skipping_states_rejected():
    lifecycle = Lifecycle()
    with pytest.raises(LifecycleError):
        lifecycle.transition(LifecycleState.ACTIVE)
    with pytest.raises(LifecycleError):
        lifecycle.transition(LifecycleState.PASSIVE)


def test_stopped_is_terminal():
    lifecycle = Lifecycle()
    lifecycle.transition(LifecycleState.STOPPED)
    for target in (LifecycleState.INITIALIZED, LifecycleState.ACTIVE):
        with pytest.raises(LifecycleError):
            lifecycle.transition(target)


def test_self_transition_is_noop():
    lifecycle = Lifecycle()
    lifecycle.transition(LifecycleState.CREATED)
    assert lifecycle.history == [LifecycleState.CREATED]


def test_observers_see_transitions():
    lifecycle = Lifecycle()
    seen = []
    lifecycle.observers.append(lambda old, new: seen.append((old, new)))
    lifecycle.transition(LifecycleState.INITIALIZED)
    assert seen == [(LifecycleState.CREATED, LifecycleState.INITIALIZED)]


def test_history_records_path():
    lifecycle = Lifecycle()
    lifecycle.transition(LifecycleState.INITIALIZED)
    lifecycle.transition(LifecycleState.ACTIVE)
    assert lifecycle.history == [
        LifecycleState.CREATED,
        LifecycleState.INITIALIZED,
        LifecycleState.ACTIVE,
    ]


def test_guards():
    lifecycle = Lifecycle()
    assert not lifecycle.can_serve
    lifecycle.transition(LifecycleState.INITIALIZED)
    lifecycle.transition(LifecycleState.ACTIVE)
    assert lifecycle.can_serve
    lifecycle.transition(LifecycleState.PASSIVE)
    assert lifecycle.is_quiescent


def test_require_raises_with_helpful_message():
    lifecycle = Lifecycle()
    with pytest.raises(LifecycleError, match="requires lifecycle state"):
        lifecycle.require(LifecycleState.ACTIVE)
    lifecycle.require(LifecycleState.CREATED, LifecycleState.ACTIVE)

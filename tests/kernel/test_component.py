"""Unit tests for components, ports and the invocation pipeline."""

import pytest

from repro.errors import ComponentError, InterfaceError, LifecycleError
from repro.kernel import (
    Component,
    Interface,
    Invocation,
    LifecycleState,
    Operation,
    bind,
)


def counter_interface():
    return Interface("Counter", "1.0", [
        Operation("increment", ("amount",), optional=1),
        Operation("total", ()),
    ])


class CounterComponent(Component):
    def on_initialize(self):
        self.state["total"] = 0

    def increment(self, amount=1):
        self.state["total"] += amount
        return self.state["total"]

    def total(self):
        return self.state["total"]


def make_counter(name="counter"):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    component.activate()
    return component


class TestComponentBasics:
    def test_empty_name_rejected(self):
        with pytest.raises(ComponentError):
            Component("")

    def test_duplicate_ports_rejected(self):
        component = CounterComponent("c")
        component.provide("svc", counter_interface())
        with pytest.raises(ComponentError):
            component.provide("svc", counter_interface())
        component.require("dep", counter_interface())
        with pytest.raises(ComponentError):
            component.require("dep", counter_interface())

    def test_port_lookup(self):
        component = make_counter()
        assert component.provided_port("svc").name == "svc"
        with pytest.raises(ComponentError):
            component.provided_port("nope")
        with pytest.raises(ComponentError):
            component.required_port("nope")

    def test_on_initialize_sets_state(self):
        component = make_counter()
        assert component.state["total"] == 0

    def test_activate_from_created_runs_initialize(self):
        component = CounterComponent("c")
        component.activate()
        assert component.lifecycle.state is LifecycleState.ACTIVE
        assert component.state["total"] == 0


class TestInvocation:
    def test_invoke_dispatches_to_method(self):
        component = make_counter()
        port = component.provided_port("svc")
        assert port.invoke(Invocation("increment", (5,))) == 5
        assert port.invoke(Invocation("total")) == 5

    def test_unknown_operation_rejected(self):
        component = make_counter()
        with pytest.raises(InterfaceError):
            component.provided_port("svc").invoke(Invocation("reset"))

    def test_wrong_arity_rejected(self):
        component = make_counter()
        with pytest.raises(InterfaceError):
            component.provided_port("svc").invoke(Invocation("increment", (1, 2)))

    def test_optional_arg_may_be_omitted(self):
        component = make_counter()
        assert component.provided_port("svc").invoke(Invocation("increment")) == 1

    def test_inactive_component_rejects_calls(self):
        component = CounterComponent("c")
        component.provide("svc", counter_interface())
        component.initialize()
        with pytest.raises(LifecycleError):
            component.provided_port("svc").invoke(Invocation("total"))

    def test_passive_component_rejects_calls(self):
        component = make_counter()
        component.passivate()
        with pytest.raises(LifecycleError):
            component.provided_port("svc").invoke(Invocation("total"))

    def test_missing_implementation_method(self):
        component = Component("bare")
        component.provide("svc", counter_interface())
        component.activate()
        with pytest.raises(ComponentError):
            component.provided_port("svc").invoke(Invocation("total"))

    def test_external_implementation_object(self):
        class Impl:
            def __init__(self):
                self.hits = 0

            def increment(self, amount=1):
                self.hits += amount
                return self.hits

            def total(self):
                return self.hits

        impl = Impl()
        component = Component("wrapper")
        component.provide("svc", counter_interface(), implementation=impl)
        component.activate()
        assert component.provided_port("svc").invoke(Invocation("increment", (3,))) == 3
        assert impl.hits == 3

    def test_replace_implementation(self):
        component = make_counter()
        port = component.provided_port("svc")
        port.invoke(Invocation("increment", (10,)))

        class FasterImpl:
            def increment(self, amount=1):
                return amount * 2

            def total(self):
                return -1

        component.replace_implementation("svc", FasterImpl())
        assert port.invoke(Invocation("increment", (10,))) == 20

    def test_replace_implementation_unknown_port(self):
        with pytest.raises(ComponentError):
            make_counter().replace_implementation("nope", object())


class TestInterceptors:
    def test_interceptors_wrap_in_order(self):
        component = make_counter()
        port = component.provided_port("svc")
        trace = []

        def outer(inv, proceed):
            trace.append("outer-before")
            result = proceed(inv)
            trace.append("outer-after")
            return result

        def inner(inv, proceed):
            trace.append("inner-before")
            result = proceed(inv)
            trace.append("inner-after")
            return result

        port.add_interceptor(outer)
        port.add_interceptor(inner)
        port.invoke(Invocation("total"))
        assert trace == ["outer-before", "inner-before", "inner-after", "outer-after"]

    def test_interceptor_may_modify_args(self):
        component = make_counter()
        port = component.provided_port("svc")

        def doubler(inv, proceed):
            if inv.operation == "increment":
                inv = Invocation("increment", (inv.args[0] * 2,), meta=inv.meta)
            return proceed(inv)

        port.add_interceptor(doubler)
        assert port.invoke(Invocation("increment", (4,))) == 8

    def test_interceptor_may_short_circuit(self):
        component = make_counter()
        port = component.provided_port("svc")
        port.add_interceptor(lambda inv, proceed: "cached")
        assert port.invoke(Invocation("total")) == "cached"
        assert component.state["total"] == 0

    def test_interceptor_insert_at_index(self):
        component = make_counter()
        port = component.provided_port("svc")
        order = []
        port.add_interceptor(lambda i, p: (order.append("a"), p(i))[1])
        port.add_interceptor(
            lambda i, p: (order.append("first"), p(i))[1], index=0
        )
        port.invoke(Invocation("total"))
        assert order == ["first", "a"]

    def test_remove_interceptor(self):
        component = make_counter()
        port = component.provided_port("svc")
        interceptor = lambda inv, proceed: proceed(inv)  # noqa: E731
        port.add_interceptor(interceptor)
        port.remove_interceptor(interceptor)
        with pytest.raises(ComponentError):
            port.remove_interceptor(interceptor)

    def test_observers_see_phases(self):
        component = make_counter()
        port = component.provided_port("svc")
        phases = []
        port.observers.append(lambda phase, inv, payload: phases.append(phase))
        port.invoke(Invocation("increment", (1,)))
        assert phases == ["before", "after"]

    def test_observers_see_errors(self):
        class Boom(Component):
            def total(self):
                raise RuntimeError("boom")

        component = Boom("boom")
        component.provide("svc", Interface("Svc", "1.0", [Operation("total")]))
        component.activate()
        port = component.provided_port("svc")
        seen = []
        port.observers.append(lambda phase, inv, payload: seen.append(phase))
        with pytest.raises(RuntimeError):
            port.invoke(Invocation("total"))
        assert seen == ["before", "error"]
        assert port.error_count == 1

    def test_active_calls_counter_resets_after_error(self):
        class Boom(Component):
            def total(self):
                raise RuntimeError("boom")

        component = Boom("boom")
        component.provide("svc", Interface("Svc", "1.0", [Operation("total")]))
        component.activate()
        with pytest.raises(RuntimeError):
            component.provided_port("svc").invoke(Invocation("total"))
        assert component.is_idle


class TestStateTransfer:
    def test_capture_restore_roundtrip(self):
        source = make_counter("source")
        source.provided_port("svc").invoke(Invocation("increment", (7,)))
        snapshot = source.capture_state()

        replacement = make_counter("replacement")
        replacement.restore_state(snapshot)
        assert replacement.provided_port("svc").invoke(Invocation("total")) == 7

    def test_capture_is_deep_copy(self):
        component = make_counter()
        component.state["nested"] = {"items": [1, 2]}
        snapshot = component.capture_state()
        component.state["nested"]["items"].append(3)
        assert snapshot["nested"]["items"] == [1, 2]


class TestDescribe:
    def test_describe_reports_ports_and_counts(self):
        component = make_counter()
        component.require("peer", counter_interface())
        component.provided_port("svc").invoke(Invocation("increment"))
        info = component.describe()
        assert info["name"] == "counter"
        assert info["lifecycle"] == "active"
        assert info["provided"]["svc"]["calls"] == 1
        assert info["required"]["peer"]["bound"] is False
        assert info["active_calls"] == 0

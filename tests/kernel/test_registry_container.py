"""Unit tests for the registry, deployment descriptors and containers."""

import pytest

from repro.errors import DeploymentError, RegistryError
from repro.events import Simulator
from repro.kernel import (
    Component,
    Container,
    DeploymentDescriptor,
    Interface,
    Invocation,
    Operation,
    PlacementConstraint,
    Registry,
)
from repro.netsim import Network

from tests.kernel.test_component import counter_interface, make_counter


def make_node(name="host", region="default", capacity=100.0):
    net = Network(Simulator())
    return net.add_node(name, capacity=capacity, region=region)


class TestRegistry:
    def test_register_lookup_unregister(self):
        registry = Registry()
        component = make_counter("a")
        registry.register(component)
        assert registry.lookup("a") is component
        assert "a" in registry
        assert len(registry) == 1
        registry.unregister("a")
        assert "a" not in registry

    def test_duplicate_registration_rejected(self):
        registry = Registry()
        registry.register(make_counter("a"))
        with pytest.raises(RegistryError):
            registry.register(make_counter("a"))

    def test_lookup_missing_raises(self):
        with pytest.raises(RegistryError):
            Registry().lookup("ghost")
        with pytest.raises(RegistryError):
            Registry().unregister("ghost")

    def test_observers_notified(self):
        registry = Registry()
        events = []
        registry.observers.append(lambda event, c: events.append((event, c.name)))
        registry.register(make_counter("a"))
        registry.unregister("a")
        assert events == [("register", "a"), ("unregister", "a")]

    def test_providers_of_filters_by_interface_and_version(self):
        registry = Registry()
        registry.register(make_counter("a"))
        other = Component("other")
        other.provide("svc", Interface("Other", "1.0", [Operation("x")]))
        other.activate()
        registry.register(other)
        ports = registry.providers_of("Counter")
        assert [p.qualified_name for p in ports] == ["a.svc"]
        assert registry.providers_of("Counter", version="1.0")
        assert not registry.providers_of("Counter", version="1.5")
        assert not registry.providers_of("Counter", version="2.0")

    def test_on_node(self):
        registry = Registry()
        a, b = make_counter("a"), make_counter("b")
        a.node_name, b.node_name = "n1", "n2"
        registry.register(a)
        registry.register(b)
        assert [c.name for c in registry.on_node("n1")] == ["a"]

    def test_describe_snapshot(self):
        registry = Registry()
        registry.register(make_counter("a"))
        snapshot = registry.describe()
        assert snapshot["a"]["lifecycle"] == "active"


class TestDescriptor:
    def test_valid_descriptor(self):
        DeploymentDescriptor("c", cpu_reservation=10.0,
                             services=("logging",)).validate()

    def test_unknown_service_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentDescriptor("c", services=("teleport",)).validate()

    def test_negative_reservation_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentDescriptor("c", cpu_reservation=-1.0).validate()

    def test_conflicting_placement_rejected(self):
        placement = PlacementConstraint(
            colocate_with=frozenset({"x"}), separate_from=frozenset({"x"})
        )
        with pytest.raises(DeploymentError):
            DeploymentDescriptor("c", placement=placement).validate()

    def test_negative_qos_rejected(self):
        with pytest.raises(DeploymentError):
            DeploymentDescriptor("c", qos_properties={"latency": -1}).validate()

    def test_placement_allows_node(self):
        placement = PlacementConstraint(
            regions=frozenset({"eu"}), forbidden_nodes=frozenset({"bad"})
        )
        assert placement.allows_node("good", "eu")
        assert not placement.allows_node("bad", "eu")
        assert not placement.allows_node("good", "us")


class TestContainer:
    def test_deploy_activates_and_registers(self):
        node = make_node()
        registry = Registry()
        container = Container(node, registry)
        component = CounterFactory()
        container.deploy(component)
        assert component.node_name == "host"
        assert component.lifecycle.can_serve
        assert registry.lookup("counter") is component

    def test_deploy_reserves_cpu(self):
        node = make_node(capacity=100.0)
        container = Container(node)
        container.deploy(
            CounterFactory(), DeploymentDescriptor("counter", cpu_reservation=40.0)
        )
        assert node.reserved == 40.0
        container.undeploy("counter")
        assert node.reserved == 0.0

    def test_descriptor_name_mismatch_rejected(self):
        container = Container(make_node())
        with pytest.raises(DeploymentError):
            container.deploy(CounterFactory(), DeploymentDescriptor("other"))

    def test_duplicate_deploy_rejected(self):
        container = Container(make_node())
        container.deploy(CounterFactory())
        with pytest.raises(DeploymentError):
            container.deploy(CounterFactory())

    def test_placement_enforced(self):
        node = make_node(region="us")
        container = Container(node)
        descriptor = DeploymentDescriptor(
            "counter", placement=PlacementConstraint(regions=frozenset({"eu"}))
        )
        with pytest.raises(DeploymentError):
            container.deploy(CounterFactory(), descriptor)

    def test_separation_constraint_enforced(self):
        registry = Registry()
        container = Container(make_node(), registry)
        container.deploy(CounterFactory("a"))
        descriptor = DeploymentDescriptor(
            "b", placement=PlacementConstraint(separate_from=frozenset({"a"}))
        )
        with pytest.raises(DeploymentError):
            container.deploy(CounterFactory("b"), descriptor)

    def test_colocation_constraint_enforced(self):
        registry = Registry()
        node1, node2 = make_node("n1"), make_node("n2")
        c1 = Container(node1, registry)
        c2 = Container(node2, registry)
        c1.deploy(CounterFactory("a"))
        descriptor = DeploymentDescriptor(
            "b", placement=PlacementConstraint(colocate_with=frozenset({"a"}))
        )
        with pytest.raises(DeploymentError):
            c2.deploy(CounterFactory("b"), descriptor)

    def test_undeploy_unknown_rejected(self):
        with pytest.raises(DeploymentError):
            Container(make_node()).undeploy("ghost")

    def test_logging_service_audits_calls(self):
        container = Container(make_node())
        component = container.deploy(
            CounterFactory(), DeploymentDescriptor("counter", services=("logging",))
        )
        component.provided_port("svc").invoke(Invocation("increment", (1,)))
        events = [entry[1] for entry in container.audit_log]
        assert "deploy" in events
        assert "call:increment" in events

    def test_security_service_blocks_unknown_callers(self):
        container = Container(make_node())
        component = container.deploy(
            CounterFactory(),
            DeploymentDescriptor(
                "counter",
                services=("security",),
                config={"allowed_callers": ["admin"]},
            ),
        )
        port = component.provided_port("svc")
        with pytest.raises(PermissionError):
            port.invoke(Invocation("total", caller="stranger"))
        assert port.invoke(Invocation("total", caller="admin")) == 0

    def test_transaction_service_rolls_back_on_error(self):
        class Shaky(CounterFactoryBase):
            def increment(self, amount=1):
                self.state["total"] += amount
                raise RuntimeError("mid-transaction crash")

        component = Shaky("counter")
        component.provide("svc", counter_interface())
        container = Container(make_node())
        container.deploy(
            component, DeploymentDescriptor("counter", services=("transactions",))
        )
        with pytest.raises(RuntimeError):
            component.provided_port("svc").invoke(Invocation("increment", (5,)))
        assert component.state["total"] == 0  # rolled back

    def test_detach_keeps_component_alive(self):
        container = Container(make_node())
        component = container.deploy(
            CounterFactory(), DeploymentDescriptor("counter", cpu_reservation=10.0)
        )
        detached, descriptor = container.detach("counter")
        assert detached is component
        assert detached.lifecycle.can_serve
        assert container.node.reserved == 0.0
        assert descriptor.cpu_reservation == 10.0
        assert not container.hosts("counter")

    def test_detach_unknown_rejected(self):
        with pytest.raises(DeploymentError):
            Container(make_node()).detach("ghost")


class CounterFactoryBase(Component):
    def on_initialize(self):
        self.state.setdefault("total", 0)

    def increment(self, amount=1):
        self.state["total"] += amount
        return self.state["total"]

    def total(self):
        return self.state["total"]


def CounterFactory(name="counter"):
    component = CounterFactoryBase(name)
    component.provide("svc", counter_interface())
    return component

"""Unit tests for bindings: blocking, buffering, redirect."""

import pytest

from repro.errors import BindingError, ComponentError, InterfaceError
from repro.kernel import Component, Interface, Operation, Version, bind

from tests.kernel.test_component import CounterComponent, counter_interface, make_counter


def make_client(name="client"):
    client = Component(name)
    client.require("counter", counter_interface())
    client.activate()
    return client


class TestBind:
    def test_call_through_binding(self):
        client, server = make_client(), make_counter("server")
        bind(client.required_port("counter"), server.provided_port("svc"))
        assert client.required_port("counter").call("increment", 2) == 2

    def test_unbound_port_raises(self):
        client = make_client()
        with pytest.raises(ComponentError):
            client.required_port("counter").call("total")

    def test_double_bind_rejected(self):
        client, server = make_client(), make_counter("server")
        bind(client.required_port("counter"), server.provided_port("svc"))
        with pytest.raises(BindingError):
            bind(client.required_port("counter"), server.provided_port("svc"))

    def test_incompatible_interface_rejected(self):
        client = Component("client")
        client.require("dep", Interface("Other", "1.0", [Operation("x")]))
        client.activate()
        server = make_counter("server")
        with pytest.raises(InterfaceError):
            bind(client.required_port("dep"), server.provided_port("svc"))

    def test_version_mismatch_rejected(self):
        client = Component("client")
        newer = Interface("Counter", Version(1, 5), [Operation("total")])
        client.require("counter", newer)
        client.activate()
        server = make_counter("server")  # provides 1.0 < required 1.5
        with pytest.raises(InterfaceError):
            bind(client.required_port("counter"), server.provided_port("svc"))

    def test_check_can_be_disabled(self):
        client = Component("client")
        client.require("dep", Interface("Other", "1.0", [Operation("total")]))
        client.activate()
        server = make_counter("server")
        binding = bind(
            client.required_port("dep"), server.provided_port("svc"), check=False
        )
        assert binding.call("total") == 0

    def test_caller_identity_propagates(self):
        client, server = make_client(), make_counter("server")
        seen = []
        server.provided_port("svc").observers.append(
            lambda phase, inv, payload: seen.append(inv.caller)
        )
        bind(client.required_port("counter"), server.provided_port("svc"))
        client.required_port("counter").call("total")
        assert seen == ["client", "client"]


class TestBlocking:
    def test_sync_call_fails_while_blocked(self):
        client, server = make_client(), make_counter("server")
        binding = bind(client.required_port("counter"), server.provided_port("svc"))
        binding.block()
        with pytest.raises(BindingError):
            client.required_port("counter").call("total")

    def test_async_calls_buffer_and_flush_fifo(self):
        client, server = make_client(), make_counter("server")
        binding = bind(client.required_port("counter"), server.provided_port("svc"))
        results = []
        binding.block()
        for amount in (1, 2, 3):
            client.required_port("counter").call_async(
                "increment", amount, on_result=results.append
            )
        assert results == []
        assert binding.pending_count == 3
        binding.unblock()
        # FIFO: totals accumulate 1, 3, 6.
        assert results == [1, 3, 6]
        assert binding.pending_count == 0
        assert binding.stats.buffered == 3
        assert binding.stats.flushed == 3

    def test_async_call_direct_when_active(self):
        client, server = make_client(), make_counter("server")
        bind(client.required_port("counter"), server.provided_port("svc"))
        results = []
        client.required_port("counter").call_async(
            "increment", 5, on_result=results.append
        )
        assert results == [5]

    def test_no_message_loss_or_duplication_across_block_cycles(self):
        client, server = make_client(), make_counter("server")
        binding = bind(client.required_port("counter"), server.provided_port("svc"))
        sent = 0
        for cycle in range(5):
            binding.block()
            for _ in range(4):
                client.required_port("counter").call_async("increment", 1)
                sent += 1
            binding.unblock()
        assert server.state["total"] == sent


class TestRedirect:
    def test_redirect_switches_target(self):
        client = make_client()
        old = make_counter("old")
        new = make_counter("new")
        binding = bind(client.required_port("counter"), old.provided_port("svc"))
        client.required_port("counter").call("increment", 10)
        binding.redirect(new.provided_port("svc"))
        client.required_port("counter").call("increment", 1)
        assert old.state["total"] == 10
        assert new.state["total"] == 1
        assert binding.stats.redirects == 1

    def test_redirect_checks_compatibility(self):
        client = make_client()
        old = make_counter("old")
        binding = bind(client.required_port("counter"), old.provided_port("svc"))
        stranger = Component("stranger")
        stranger.provide("svc", Interface("Other", "1.0", [Operation("x")]))
        stranger.activate()
        with pytest.raises(InterfaceError):
            binding.redirect(stranger.provided_port("svc"))

    def test_blocked_redirect_flushes_to_new_target(self):
        client = make_client()
        old = make_counter("old")
        new = make_counter("new")
        binding = bind(client.required_port("counter"), old.provided_port("svc"))
        binding.block()
        client.required_port("counter").call_async("increment", 3)
        binding.redirect(new.provided_port("svc"))
        binding.unblock()
        assert old.state["total"] == 0
        assert new.state["total"] == 3

    def test_unbind_detaches(self):
        client = make_client()
        server = make_counter("server")
        binding = bind(client.required_port("counter"), server.provided_port("svc"))
        binding.unbind()
        assert not client.required_port("counter").is_bound
        with pytest.raises(ComponentError):
            client.required_port("counter").call("total")

    def test_taps_observe_success_and_failure(self):
        client = make_client()

        class Flaky(CounterComponent):
            def total(self):
                raise RuntimeError("flaky")

        server = Flaky("server")
        server.provide("svc", counter_interface())
        server.activate()
        binding = bind(client.required_port("counter"), server.provided_port("svc"))
        events = []
        binding.taps.append(lambda inv, payload, ok: events.append((inv.operation, ok)))
        client.required_port("counter").call("increment", 1)
        with pytest.raises(RuntimeError):
            client.required_port("counter").call("total")
        assert events == [("increment", True), ("total", False)]
        assert binding.stats.errors == 1

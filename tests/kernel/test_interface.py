"""Unit tests for interfaces, operations, versions and adapters."""

import pytest

from repro.errors import InterfaceError, VersionError
from repro.kernel import Interface, InterfaceAdapter, Operation, Version, interface_of


class TestVersion:
    def test_parse(self):
        assert Version.parse("2.5") == Version(2, 5)

    def test_parse_rejects_garbage(self):
        for text in ("", "1", "1.2.3", "a.b", "-1.0"):
            with pytest.raises(VersionError):
                Version.parse(text)

    def test_negative_rejected(self):
        with pytest.raises(VersionError):
            Version(-1, 0)

    def test_ordering(self):
        assert Version(1, 2) < Version(1, 10) < Version(2, 0)

    def test_compatibility_same_major_higher_minor(self):
        assert Version(1, 3).compatible_with(Version(1, 1))
        assert not Version(1, 0).compatible_with(Version(1, 1))
        assert not Version(2, 0).compatible_with(Version(1, 9))

    def test_bumps(self):
        assert Version(1, 2).bump_minor() == Version(1, 3)
        assert Version(1, 2).bump_major() == Version(2, 0)

    def test_str(self):
        assert str(Version(3, 1)) == "3.1"


class TestOperation:
    def test_arity_bounds(self):
        op = Operation("f", ("a", "b", "c"), optional=1)
        assert op.min_arity == 2
        assert op.max_arity == 3
        assert op.accepts_arity(2) and op.accepts_arity(3)
        assert not op.accepts_arity(1) and not op.accepts_arity(4)

    def test_invalid_optional_rejected(self):
        with pytest.raises(InterfaceError):
            Operation("f", ("a",), optional=2)

    def test_empty_name_rejected(self):
        with pytest.raises(InterfaceError):
            Operation("")

    def test_extends_adds_optional_params(self):
        old = Operation("f", ("a",))
        new = Operation("f", ("a", "b"), optional=1)
        assert new.extends(old)

    def test_extends_rejects_new_required_params(self):
        old = Operation("f", ("a",))
        new = Operation("f", ("a", "b"))
        assert not new.extends(old)

    def test_extends_rejects_renamed_params(self):
        old = Operation("f", ("a", "b"))
        new = Operation("f", ("a", "c"))
        assert not new.extends(old)

    def test_extends_rejects_different_name(self):
        assert not Operation("g", ("a",)).extends(Operation("f", ("a",)))

    def test_extends_may_relax_required_params(self):
        old = Operation("f", ("a", "b"))
        new = Operation("f", ("a", "b"), optional=1)
        assert new.extends(old)


class TestInterface:
    def make(self):
        return Interface(
            "Storage", "1.0",
            [Operation("get", ("key",)), Operation("put", ("key", "value"))],
        )

    def test_lookup(self):
        iface = self.make()
        assert iface.operation("get").params == ("key",)
        assert "put" in iface
        with pytest.raises(InterfaceError):
            iface.operation("delete")

    def test_duplicate_operation_rejected(self):
        iface = self.make()
        with pytest.raises(InterfaceError):
            iface.add_operation(Operation("get", ("key",)))

    def test_empty_name_rejected(self):
        with pytest.raises(InterfaceError):
            Interface("")

    def test_satisfies_self(self):
        iface = self.make()
        assert iface.satisfies(iface)

    def test_satisfies_requires_same_name(self):
        other = Interface("Cache", "1.0", self.make().operations.values())
        assert not other.satisfies(self.make())

    def test_newer_minor_satisfies_older(self):
        old = self.make()
        new = old.evolve(add=[Operation("delete", ("key",))])
        assert new.version == Version(1, 1)
        assert new.satisfies(old)
        assert not old.satisfies(new)  # old lacks delete... version also lower

    def test_breaking_evolution_bumps_major(self):
        old = self.make()
        new = old.evolve(
            extend={"get": Operation("get", ("key", "namespace"))}, breaking=True
        )
        assert new.version == Version(2, 0)
        assert not new.satisfies(old)

    def test_incompatible_extension_without_breaking_rejected(self):
        old = self.make()
        with pytest.raises(VersionError):
            old.evolve(extend={"get": Operation("get", ("key", "namespace"))})

    def test_extend_unknown_operation_rejected(self):
        with pytest.raises(InterfaceError):
            self.make().evolve(extend={"nope": Operation("nope")})

    def test_compatible_extension_keeps_compliancy(self):
        old = self.make()
        new = old.evolve(
            extend={"get": Operation("get", ("key", "default"), optional=1)}
        )
        assert new.satisfies(old)


class TestInterfaceAdapter:
    def test_rename_and_defaults(self):
        old = Interface("Svc", "1.0", [Operation("fetch", ("key",))])
        new = Interface("Svc", "2.0", [Operation("get", ("key", "region"))])
        adapter = InterfaceAdapter(
            old, new, renames={"fetch": "get"}, defaults={"fetch": ("eu",)}
        )
        adapter.verify()
        name, args = adapter.translate("fetch", ("k1",))
        assert name == "get"
        assert args == ("k1", "eu")

    def test_unknown_old_operation_rejected(self):
        old = Interface("Svc", "1.0", [Operation("fetch", ("key",))])
        adapter = InterfaceAdapter(old, old)
        with pytest.raises(InterfaceError):
            adapter.translate("nope", ())

    def test_arity_mismatch_detected_by_verify(self):
        old = Interface("Svc", "1.0", [Operation("fetch", ("key",))])
        new = Interface("Svc", "2.0", [Operation("fetch", ("key", "region"))])
        adapter = InterfaceAdapter(old, new)  # no defaults for new param
        with pytest.raises(InterfaceError):
            adapter.verify()


class TestInterfaceOf:
    def test_derives_public_methods(self):
        class Impl:
            def greet(self, who):
                return f"hi {who}"

            def add(self, a, b=0):
                return a + b

            def _private(self):
                pass

        iface = interface_of(Impl(), "Greeter")
        assert set(iface.operations) == {"greet", "add"}
        assert iface.operation("add").optional == 1
        assert "_private" not in iface

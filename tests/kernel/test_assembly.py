"""Unit tests for assemblies."""

import pytest

from repro.errors import BindingError, ComponentError, DeploymentError
from repro.events import Simulator
from repro.kernel import Assembly
from repro.netsim import star
from repro.connectors import RpcConnector

from tests.helpers import (
    CounterComponent,
    counter_interface,
    echo_interface,
    make_counter,
    make_echo,
)


def make_assembly():
    sim = Simulator()
    net = star(sim, leaves=3)
    return Assembly(net, name="test-app")


def fresh_counter(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


class TestDeployment:
    def test_deploy_places_component(self):
        assembly = make_assembly()
        component = assembly.deploy(fresh_counter("c"), "leaf0")
        assert component.node_name == "leaf0"
        assert assembly.component("c") is component
        assert assembly.registry.on_node("leaf0") == [component]

    def test_container_created_lazily_and_cached(self):
        assembly = make_assembly()
        container = assembly.container_on("leaf1")
        assert assembly.container_on("leaf1") is container

    def test_undeploy(self):
        assembly = make_assembly()
        assembly.deploy(fresh_counter("c"), "leaf0")
        assembly.undeploy("c")
        assert "c" not in assembly.registry

    def test_undeploy_unknown_raises(self):
        with pytest.raises(Exception):
            make_assembly().undeploy("ghost")


class TestWiring:
    def wire(self, assembly):
        client = CounterComponent("client")
        client.provide("svc", counter_interface())
        client.require("peer", counter_interface())
        assembly.deploy(client, "leaf0")
        server = fresh_counter("server")
        assembly.deploy(server, "leaf1")
        binding = assembly.connect("client", "peer", target_component="server")
        return client, server, binding

    def test_connect_by_component_name(self):
        assembly = make_assembly()
        client, server, binding = self.wire(assembly)
        assert binding in assembly.bindings
        assert client.required_port("peer").call("increment", 2) == 2
        assert server.state["total"] == 2

    def test_connect_needs_target(self):
        assembly = make_assembly()
        client = CounterComponent("client")
        client.require("peer", counter_interface())
        assembly.deploy(client, "leaf0")
        with pytest.raises(BindingError):
            assembly.connect("client", "peer")

    def test_disconnect(self):
        assembly = make_assembly()
        client, _server, binding = self.wire(assembly)
        assembly.disconnect(binding)
        assert binding not in assembly.bindings
        assert not client.required_port("peer").is_bound

    def test_bindings_from_and_to(self):
        assembly = make_assembly()
        self.wire(assembly)
        assert len(assembly.bindings_from("client")) == 1
        assert len(assembly.bindings_to("server")) == 1
        assert len(assembly.bindings_touching("client")) == 1
        assert assembly.bindings_from("server") == []

    def test_connector_registration(self):
        assembly = make_assembly()
        connector = RpcConnector("rpc", echo_interface())
        assembly.add_connector(connector)
        with pytest.raises(ComponentError):
            assembly.add_connector(RpcConnector("rpc", echo_interface()))
        assert assembly.remove_connector("rpc") is connector
        with pytest.raises(ComponentError):
            assembly.remove_connector("rpc")


class TestIntrospection:
    def test_architecture_graph_shape(self):
        assembly = make_assembly()
        client = CounterComponent("client")
        client.provide("svc", counter_interface())
        client.require("peer", counter_interface())
        assembly.deploy(client, "leaf0")
        assembly.deploy(fresh_counter("server"), "leaf1")
        assembly.connect("client", "peer", target_component="server")
        graph = assembly.architecture_graph()
        assert set(graph.nodes) == {"client", "server"}
        assert graph.has_edge("client", "server")
        assert graph.edges["client", "server"]["kind"] == "binding"

    def test_architecture_graph_includes_connectors(self):
        assembly = make_assembly()
        connector = RpcConnector("rpc", echo_interface())
        server = make_echo("server")
        assembly.deploy(server, "leaf0")
        connector.attach("server", server.provided_port("svc"))
        assembly.add_connector(connector)
        client = CounterComponent("client")
        client.require("peer", echo_interface())
        assembly.deploy(client, "leaf1")
        assembly.connect("client", "peer", target=connector.endpoint("client"))
        graph = assembly.architecture_graph()
        assert graph.has_edge("rpc", "server")
        assert graph.has_edge("client", "rpc")

    def test_describe_snapshot(self):
        assembly = make_assembly()
        assembly.deploy(fresh_counter("c"), "leaf0")
        info = assembly.describe()
        assert info["name"] == "test-app"
        assert "c" in info["components"]
        assert "leaf0" in info["nodes"]

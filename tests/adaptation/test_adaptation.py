"""Unit tests for the adaptation engine."""

import pytest

from repro.adaptation import (
    AdaptationManager,
    AdaptationPolicy,
    attach_filters,
    call,
    detach_filters,
    set_connector_policy,
    switch_strategy,
)
from repro.errors import AdaptationError
from repro.events import Simulator
from repro.filters import FilterSet, StopFilter, match
from repro.qos import MetricRegistry
from repro.strategy import Strategy, StrategySlot

from tests.helpers import echo_interface, make_counter, make_echo


def make_manager(period=0.5):
    sim = Simulator()
    registry = MetricRegistry(window=5.0)
    return sim, registry, AdaptationManager(sim, registry, period=period)


class TestPolicy:
    def test_name_required(self):
        with pytest.raises(AdaptationError):
            AdaptationPolicy("", condition=lambda ctx: True)

    def test_arm_after_validated(self):
        with pytest.raises(AdaptationError):
            AdaptationPolicy("p", condition=lambda ctx: True, arm_after=0)

    def test_fires_when_condition_holds(self):
        fired = []
        policy = AdaptationPolicy(
            "p", condition=lambda ctx: ctx["load"] > 0.5,
            actions=[lambda ctx: fired.append(ctx["load"])],
        )
        assert policy.ready({"load": 0.9}, now=0.0)
        policy.fire({"load": 0.9}, now=0.0)
        assert fired == [0.9]
        assert policy.fired_count == 1

    def test_cooldown_suppresses_refiring(self):
        policy = AdaptationPolicy("p", condition=lambda ctx: True, cooldown=5.0)
        assert policy.ready({}, now=0.0)
        policy.fire({}, now=0.0)
        assert not policy.ready({}, now=3.0)
        assert policy.ready({}, now=5.0)

    def test_arm_after_debounces(self):
        policy = AdaptationPolicy("p", condition=lambda ctx: True, arm_after=3)
        assert not policy.ready({}, now=0.0)
        assert not policy.ready({}, now=1.0)
        assert policy.ready({}, now=2.0)

    def test_streak_resets_on_false_condition(self):
        values = iter([True, True, False, True, True, True])
        policy = AdaptationPolicy("p", condition=lambda ctx: next(values),
                                  arm_after=3)
        assert not policy.ready({}, now=0.0)
        assert not policy.ready({}, now=1.0)
        assert not policy.ready({}, now=2.0)  # False resets
        assert not policy.ready({}, now=3.0)
        assert not policy.ready({}, now=4.0)
        assert policy.ready({}, now=5.0)

    def test_one_shot_exhausts(self):
        policy = AdaptationPolicy("p", condition=lambda ctx: True,
                                  one_shot=True)
        policy.fire({}, now=0.0)
        assert not policy.ready({}, now=100.0)


class TestManager:
    def test_duplicate_policy_rejected(self):
        _sim, _registry, manager = make_manager()
        manager.add_policy(AdaptationPolicy("p", condition=lambda ctx: False))
        with pytest.raises(AdaptationError):
            manager.add_policy(AdaptationPolicy("p", condition=lambda ctx: False))

    def test_remove_policy(self):
        _sim, _registry, manager = make_manager()
        manager.add_policy(AdaptationPolicy("p", condition=lambda ctx: False))
        manager.remove_policy("p")
        with pytest.raises(AdaptationError):
            manager.remove_policy("p")

    def test_context_flattens_metrics_and_probes(self):
        sim, registry, manager = make_manager()
        registry.record("latency", 0.2, now=0.0)
        manager.add_probe("battery", lambda: 0.8)
        context = manager.context()
        assert context["latency.mean"] == pytest.approx(0.2)
        assert context["battery"] == 0.8

    def test_evaluate_fires_matching_policies(self):
        sim, registry, manager = make_manager()
        registry.record("latency", 0.9, now=0.0)
        hits = []
        manager.add_policy(AdaptationPolicy(
            "degrade", condition=lambda ctx: ctx.get("latency.mean", 0) > 0.5,
            actions=[lambda ctx: hits.append("degrade")],
        ))
        fired = manager.evaluate()
        assert fired == ["degrade"]
        assert manager.log[0].policy == "degrade"

    def test_priority_orders_evaluation(self):
        _sim, _registry, manager = make_manager()
        order = []
        manager.add_policy(AdaptationPolicy(
            "low", condition=lambda ctx: True, priority=1,
            actions=[lambda ctx: order.append("low")]))
        manager.add_policy(AdaptationPolicy(
            "high", condition=lambda ctx: True, priority=9,
            actions=[lambda ctx: order.append("high")]))
        manager.evaluate()
        assert order == ["high", "low"]

    def test_periodic_evaluation(self):
        sim, registry, manager = make_manager(period=1.0)
        registry.record("load", 0.9, now=0.0)
        counter = []
        manager.add_policy(AdaptationPolicy(
            "tick", condition=lambda ctx: ctx.get("load.last", 0) > 0.5,
            actions=[lambda ctx: counter.append(1)], cooldown=0.0,
        ))
        manager.start()
        sim.run(until=3.5)
        manager.stop()
        assert len(counter) == 3

    def test_on_violation_listener_reacts_immediately(self):
        sim, registry, manager = make_manager()
        hits = []
        manager.add_policy(AdaptationPolicy(
            "react", condition=lambda ctx: True,
            actions=[lambda ctx: hits.append(sim.now)],
        ))
        manager.on_violation("violation", None)
        manager.on_violation("checked", None)
        assert hits == [0.0]


class TestActions:
    def test_switch_strategy_action(self):
        slot = StrategySlot("codec", [
            Strategy("hq", lambda v: "hq"),
            Strategy("lq", lambda v: "lq"),
        ], initial="hq")
        action = switch_strategy(slot, "lq", reason="congestion")
        action({})
        assert slot.current_name == "lq"
        action({})  # idempotent
        assert slot.switch_count == 1

    def test_attach_detach_filters_actions(self):
        component = make_counter()
        port = component.provided_port("svc")
        filter_set = FilterSet("mute", [StopFilter("absorb", match("increment"))])
        attach = attach_filters(filter_set, port)
        detach = detach_filters(filter_set, port)
        attach({})
        attach({})  # idempotent
        assert filter_set.attachment_count == 1
        detach({})
        detach({})  # idempotent
        assert filter_set.attachment_count == 0

    def test_set_connector_policy_action(self):
        from repro.connectors import LoadBalancerConnector

        lb = LoadBalancerConnector("lb", echo_interface())
        action = set_connector_policy(lb, "least_busy")
        action({})
        assert lb.policy == "least_busy"

    def test_call_action(self):
        hits = []
        action = call(hits.append, 42)
        action({})
        assert hits == [42]

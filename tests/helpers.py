"""Shared component fixtures used across the test suite."""

from repro.kernel import Component, Interface, Operation


def counter_interface(version="1.0"):
    return Interface("Counter", version, [
        Operation("increment", ("amount",), optional=1),
        Operation("total", ()),
    ])


class CounterComponent(Component):
    """A stateful counter; the canonical stateful test component."""

    def on_initialize(self):
        self.state.setdefault("total", 0)

    def increment(self, amount=1):
        self.state["total"] += amount
        return self.state["total"]

    def total(self):
        return self.state["total"]


def make_counter(name="counter", version="1.0"):
    component = CounterComponent(name)
    component.provide("svc", counter_interface(version))
    component.activate()
    return component


def echo_interface():
    return Interface("Echo", "1.0", [Operation("echo", ("value",))])


class EchoComponent(Component):
    """Stateless component that records and returns what it sees."""

    def on_initialize(self):
        self.state.setdefault("seen", [])

    def echo(self, value):
        self.state["seen"].append(value)
        return f"{self.name}:{value}"


def make_echo(name="echo"):
    component = EchoComponent(name)
    component.provide("svc", echo_interface())
    component.activate()
    return component


def stage_interface():
    return Interface("Stage", "1.0", [Operation("process", ("value",))])


class StageComponent(Component):
    """Pipeline stage applying a function to the value."""

    def __init__(self, name, transform):
        super().__init__(name)
        self._transform = transform

    def process(self, value):
        return self._transform(value)


def make_stage(name, transform):
    component = StageComponent(name, transform)
    component.provide("svc", stage_interface())
    component.activate()
    return component


class FlakyComponent(Component):
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, name, failures=1):
        super().__init__(name)
        self.remaining_failures = failures
        self.calls = 0

    def echo(self, value):
        self.calls += 1
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise RuntimeError(f"{self.name} transient failure")
        return f"{self.name}:{value}"


def make_flaky(name="flaky", failures=1):
    component = FlakyComponent(name, failures)
    component.provide("svc", echo_interface())
    component.activate()
    return component

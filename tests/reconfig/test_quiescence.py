"""Unit tests for the quiescence protocol."""

import pytest

from repro.errors import QuiescenceError
from repro.events import Simulator
from repro.kernel import Component, bind
from repro.reconfig import QuiescenceRegion, reach_quiescence

from tests.helpers import counter_interface, make_counter


def make_region():
    client = Component("client")
    client.require("peer", counter_interface())
    client.activate()
    server = make_counter("server")
    binding = bind(client.required_port("peer"), server.provided_port("svc"))
    region = QuiescenceRegion([server], [binding])
    return client, server, binding, region


class TestRegion:
    def test_block_buffers_async_traffic(self):
        client, server, binding, region = make_region()
        region.block()
        client.required_port("peer").call_async("increment", 1)
        assert binding.pending_count == 1
        assert server.state["total"] == 0
        region.passivate()
        region.release()
        assert server.state["total"] == 1

    def test_double_block_rejected(self):
        _c, _s, _b, region = make_region()
        region.block()
        with pytest.raises(QuiescenceError):
            region.block()

    def test_passivate_requires_block(self):
        _c, _s, _b, region = make_region()
        with pytest.raises(QuiescenceError):
            region.passivate()

    def test_release_requires_block(self):
        _c, _s, _b, region = make_region()
        with pytest.raises(QuiescenceError):
            region.release()

    def test_passivate_freezes_component(self):
        _c, server, _b, region = make_region()
        region.block()
        region.passivate()
        assert server.lifecycle.is_quiescent
        region.release()
        assert server.lifecycle.can_serve

    def test_passivate_rejected_while_busy(self):
        _c, server, _b, region = make_region()
        server._active_calls = 1  # simulate an in-flight call
        region.block()
        assert not region.is_drained()
        with pytest.raises(QuiescenceError, match="in progress"):
            region.passivate()
        server._active_calls = 0
        region.passivate()
        region.release()

    def test_report_counts_buffered(self):
        client, _server, _binding, region = make_region()
        region.block(now=1.0)
        for _ in range(3):
            client.required_port("peer").call_async("increment", 1)
        region.passivate(now=2.0)
        region.release(now=5.0)
        assert region.report.buffered_calls == 3
        assert region.report.blocked_duration == 4.0
        assert region.report.drain_duration == 1.0


class TestReachQuiescence:
    def test_immediate_quiescence(self):
        sim = Simulator()
        _c, server, _b, region = make_region()
        ready = []
        reach_quiescence(region, sim, lambda: ready.append(sim.now))
        sim.run()
        assert ready == [0.0]
        assert server.lifecycle.is_quiescent

    def test_waits_for_busy_component(self):
        sim = Simulator()
        _c, server, _b, region = make_region()
        server._active_calls = 1
        sim.at(lambda: setattr(server, "_active_calls", 0), when=0.05)
        ready = []
        reach_quiescence(region, sim, lambda: ready.append(sim.now),
                         poll_interval=0.01)
        sim.run()
        assert len(ready) == 1
        assert ready[0] >= 0.05
        assert region.report.polls > 1

    def test_timeout_releases_and_raises(self):
        sim = Simulator()
        _c, server, _b, region = make_region()
        server._active_calls = 1  # never drains
        reach_quiescence(region, sim, lambda: None,
                         poll_interval=0.01, timeout=0.1)
        with pytest.raises(QuiescenceError, match="not reached"):
            sim.run()
        assert not region.is_blocked  # released on failure

"""Unit tests for migration and the migration planner."""

import pytest

from repro.errors import ConsistencyError, MigrationError
from repro.events import Simulator
from repro.kernel import Assembly, DeploymentDescriptor, PlacementConstraint
from repro.netsim import full_mesh
from repro.reconfig import (
    MigrateComponent,
    MigrationPlanner,
    ReconfigurationTransaction,
    TrafficMatrix,
    TransactionState,
)

from tests.helpers import CounterComponent, counter_interface


def fresh_counter(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


def mesh_assembly(size=4):
    sim = Simulator()
    return Assembly(full_mesh(sim, size=size))


class TestMigrateChange:
    def test_migration_moves_component(self):
        assembly = mesh_assembly()
        component = assembly.deploy(fresh_counter("c"), "n0")
        report = ReconfigurationTransaction(assembly).add(
            MigrateComponent("c", "n2")
        ).execute()
        assert report.state is TransactionState.COMMITTED
        assert component.node_name == "n2"
        assert assembly.registry.on_node("n0") == []

    def test_migration_preserves_state_and_bindings(self):
        assembly = mesh_assembly()
        client = CounterComponent("client")
        client.provide("svc", counter_interface())
        client.require("peer", counter_interface())
        assembly.deploy(client, "n0")
        server = assembly.deploy(fresh_counter("server"), "n1")
        assembly.connect("client", "peer", target_component="server")
        client.required_port("peer").call("increment", 9)

        ReconfigurationTransaction(assembly).add(
            MigrateComponent("server", "n3")
        ).execute()
        assert server.node_name == "n3"
        assert client.required_port("peer").call("total") == 9

    def test_migration_to_same_node_rejected(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("c"), "n0")
        with pytest.raises(ConsistencyError, match="already on"):
            ReconfigurationTransaction(assembly).add(
                MigrateComponent("c", "n0")
            ).execute()

    def test_migration_to_down_node_rejected(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("c"), "n0")
        assembly.network.node("n1").crash()
        with pytest.raises(ConsistencyError, match="down"):
            ReconfigurationTransaction(assembly).add(
                MigrateComponent("c", "n1")
            ).execute()

    def test_migration_respects_placement(self):
        assembly = mesh_assembly()
        descriptor = DeploymentDescriptor(
            "c", placement=PlacementConstraint(
                forbidden_nodes=frozenset({"n1"}))
        )
        assembly.deploy(fresh_counter("c"), "n0", descriptor)
        with pytest.raises(ConsistencyError, match="placement"):
            ReconfigurationTransaction(assembly).add(
                MigrateComponent("c", "n1")
            ).execute()

    def test_migration_respects_capacity(self):
        assembly = mesh_assembly()
        descriptor = DeploymentDescriptor("c", cpu_reservation=60.0)
        assembly.deploy(fresh_counter("c"), "n0", descriptor)
        assembly.network.node("n1").reserve(50.0)
        with pytest.raises(ConsistencyError, match="capacity"):
            ReconfigurationTransaction(assembly).add(
                MigrateComponent("c", "n1")
            ).execute()

    def test_migration_cost_grows_with_state(self):
        assembly = mesh_assembly()
        small = assembly.deploy(fresh_counter("small"), "n0")
        big = assembly.deploy(fresh_counter("big"), "n0")
        big.state["payload"] = list(range(10_000))
        move_small = MigrateComponent("small", "n1")
        move_big = MigrateComponent("big", "n1")
        move_small.apply(assembly)
        move_big.apply(assembly)
        assert move_big.cost() > move_small.cost()


class TestPlanner:
    def test_watermark_validation(self):
        assembly = mesh_assembly()
        with pytest.raises(MigrationError):
            MigrationPlanner(assembly, high_watermark=0.3, low_watermark=0.5)

    def test_load_levelling_moves_off_hot_node(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("hot-comp"), "n0")
        assembly.network.node("n0").set_background_load(0.9)
        assembly.network.node("n1").set_background_load(0.6)
        assembly.network.node("n2").set_background_load(0.1)
        assembly.network.node("n3").set_background_load(0.6)
        planner = MigrationPlanner(assembly)
        moves = planner.plan_load_levelling()
        assert len(moves) == 1
        assert moves[0].component == "hot-comp"
        assert moves[0].target == "n2"

    def test_no_moves_when_balanced(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("c"), "n0")
        for node in assembly.network.nodes.values():
            node.set_background_load(0.4)
        assert MigrationPlanner(assembly).plan_load_levelling() == []

    def test_no_moves_without_cool_target(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("c"), "n0")
        for node in assembly.network.nodes.values():
            node.set_background_load(0.9)
        assert MigrationPlanner(assembly).plan_load_levelling() == []

    def test_one_move_per_hot_node_per_round(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("a"), "n0")
        assembly.deploy(fresh_counter("b"), "n0")
        assembly.network.node("n0").set_background_load(0.9)
        moves = MigrationPlanner(assembly).plan_load_levelling()
        assert len(moves) == 1

    def test_affinity_moves_towards_demand(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("svc"), "n0")
        traffic = TrafficMatrix()
        traffic.record("n3", "svc", calls=100)
        traffic.record("n1", "svc", calls=5)
        moves = MigrationPlanner(assembly).plan_affinity(traffic)
        assert len(moves) == 1
        assert moves[0].target == "n3"

    def test_affinity_skips_if_already_colocated(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("svc"), "n3")
        traffic = TrafficMatrix()
        traffic.record("n3", "svc", calls=100)
        assert MigrationPlanner(assembly).plan_affinity(traffic) == []

    def test_affinity_skips_overloaded_destination(self):
        assembly = mesh_assembly()
        assembly.deploy(fresh_counter("svc"), "n0")
        assembly.network.node("n3").set_background_load(0.95)
        traffic = TrafficMatrix()
        traffic.record("n3", "svc", calls=100)
        assert MigrationPlanner(assembly).plan_affinity(traffic) == []

    def test_planner_to_changes_executes(self):
        assembly = mesh_assembly()
        component = assembly.deploy(fresh_counter("c"), "n0")
        assembly.network.node("n0").set_background_load(0.9)
        planner = MigrationPlanner(assembly)
        moves = planner.plan_load_levelling()
        txn = ReconfigurationTransaction(assembly, name="rebalance")
        for change in planner.to_changes(moves):
            txn.add(change)
        txn.execute()
        assert component.node_name != "n0"

    def test_traffic_matrix_hottest(self):
        traffic = TrafficMatrix()
        assert traffic.hottest_source("svc") is None
        traffic.record("a", "svc", 10)
        traffic.record("b", "svc", 20)
        traffic.record("b", "other", 99)
        assert traffic.hottest_source("svc") == "b"

"""Migration planning with CPU reservations: moves spread, not stack.

Without reservations a migrated component leaves no footprint on its
target, so every planning round picks the same coolest node; with
descriptors reserving CPU each move warms its target, and successive
rounds naturally spread the load.
"""

import pytest

from repro.events import Simulator
from repro.kernel import Assembly, DeploymentDescriptor
from repro.netsim import full_mesh
from repro.reconfig import MigrationPlanner, ReconfigurationTransaction

from tests.helpers import CounterComponent, counter_interface


def fresh(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


def build(reserve: float, workers: int, background: float):
    sim = Simulator()
    assembly = Assembly(full_mesh(sim, size=5))
    for index in range(workers):
        name = f"w{index}"
        descriptor = DeploymentDescriptor(name, cpu_reservation=reserve)
        assembly.deploy(fresh(name), "n0", descriptor)
    assembly.network.node("n0").set_background_load(background)
    return assembly


def drain(assembly, rounds=8):
    planner = MigrationPlanner(assembly, high_watermark=0.6,
                               low_watermark=0.5)
    targets = []
    for _ in range(rounds):
        moves = planner.plan_load_levelling(max_moves=1)
        if not moves:
            break
        txn = ReconfigurationTransaction(assembly)
        for change in planner.to_changes(moves):
            txn.add(change)
        txn.execute()
        targets.append(moves[0].target)
    return targets


def test_reservations_spread_migrations_across_hosts():
    # 3 workers x 30 units on a 100-unit node + 0.45 background: hot
    # until all three have left.
    assembly = build(reserve=30.0, workers=3, background=0.45)
    targets = drain(assembly)
    assert len(targets) == 3
    # Each move warms its target (0.3 utilisation), so the next round's
    # least-loaded pick is a different host.
    assert len(set(targets)) == 3


def test_without_reservations_targets_stack():
    # Footprint-free components: the hot node stays hot (background
    # only) and the coolest target never warms, so moves stack.
    assembly = build(reserve=0.0, workers=3, background=0.9)
    targets = drain(assembly)
    assert len(targets) == 3
    assert len(set(targets)) == 1


def test_drain_cools_the_hot_node():
    assembly = build(reserve=30.0, workers=3, background=0.45)
    before = assembly.network.node("n0").utilisation
    drain(assembly)
    after = assembly.network.node("n0").utilisation
    assert before > 0.9
    assert after == pytest.approx(0.45)
    assert assembly.registry.on_node("n0") == []
    # Every worker still serves from its new host.
    for index in range(3):
        worker = assembly.component(f"w{index}")
        assert worker.lifecycle.can_serve
        assert worker.node_name != "n0"

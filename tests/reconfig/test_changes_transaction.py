"""Unit tests for reconfiguration changes and transactions."""

import pytest

from repro.errors import (
    ConsistencyError,
    QuiescenceError,
    ReconfigurationError,
)
from repro.events import Simulator
from repro.kernel import (
    Assembly,
    Interface,
    InterfaceAdapter,
    Operation,
)
from repro.netsim import star
from repro.reconfig import (
    AddBinding,
    AddComponent,
    MigrateComponent,
    ModifyInterface,
    RemoveBinding,
    RemoveComponent,
    ReplaceComponent,
    ReplaceImplementation,
    ReconfigurationTransaction,
    RewireBinding,
    StateTranslator,
    TransactionState,
    check_assembly,
)

from tests.helpers import CounterComponent, counter_interface


def fresh_counter(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


def fresh_client(name="client"):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    component.require("peer", counter_interface())
    return component


def wired_assembly():
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=3))
    client = assembly.deploy(fresh_client(), "leaf0")
    server = assembly.deploy(fresh_counter("server"), "leaf1")
    assembly.connect("client", "peer", target_component="server")
    return assembly, client, server


class TestAddRemove:
    def test_add_component(self):
        assembly, _c, _s = wired_assembly()
        txn = ReconfigurationTransaction(assembly).add(
            AddComponent(fresh_counter("extra"), "leaf2")
        )
        report = txn.execute()
        assert report.state is TransactionState.COMMITTED
        assert assembly.component("extra").node_name == "leaf2"

    def test_add_duplicate_rejected_in_validation(self):
        assembly, _c, _s = wired_assembly()
        txn = ReconfigurationTransaction(assembly).add(
            AddComponent(fresh_counter("server"), "leaf2")
        )
        with pytest.raises(ConsistencyError):
            txn.execute()
        assert txn.report.state is TransactionState.FAILED

    def test_add_to_down_node_rejected(self):
        assembly, _c, _s = wired_assembly()
        assembly.network.node("leaf2").crash()
        with pytest.raises(ConsistencyError):
            ReconfigurationTransaction(assembly).add(
                AddComponent(fresh_counter("x"), "leaf2")
            ).execute()

    def test_remove_component_requires_no_inbound_bindings(self):
        assembly, _c, _s = wired_assembly()
        with pytest.raises(ConsistencyError, match="rewire first"):
            ReconfigurationTransaction(assembly).add(
                RemoveComponent("server")
            ).execute()

    def test_remove_after_rewire(self):
        assembly, _c, _s = wired_assembly()
        replacement = fresh_counter("server2")
        txn = (ReconfigurationTransaction(assembly)
               .add(AddComponent(replacement, "leaf2"))
               .add(RewireBinding("client", "peer",
                                  target_component="server2"))
               .add(RemoveComponent("server")))
        report = txn.execute()
        assert report.state is TransactionState.COMMITTED
        assert "server" not in assembly.registry
        assert assembly.component("client").required_port("peer").call(
            "increment", 1) == 1
        assert replacement.state["total"] == 1


class TestBindingChanges:
    def test_add_and_remove_binding(self):
        assembly, _c, _s = wired_assembly()
        second = fresh_client("client2")
        assembly.deploy(second, "leaf2")
        ReconfigurationTransaction(assembly).add(
            AddBinding("client2", "peer", target_component="server")
        ).execute()
        assert second.required_port("peer").is_bound

        # A bare unbind would leave a dangling requirement; retiring the
        # client in the same transaction keeps the configuration whole.
        ReconfigurationTransaction(assembly).add(
            RemoveBinding("client2", "peer")
        ).add(
            RemoveComponent("client2")
        ).execute()
        assert "client2" not in assembly.registry

    def test_remove_binding_leaves_unbound_port_violation(self):
        # Removing the only binding of a required port breaks global
        # consistency, so the transaction rolls back.
        assembly, client, _s = wired_assembly()
        txn = ReconfigurationTransaction(assembly).add(
            RemoveBinding("client", "peer")
        )
        with pytest.raises(ConsistencyError, match="unbound"):
            txn.execute()
        assert txn.report.state is TransactionState.ROLLED_BACK
        assert client.required_port("peer").is_bound  # restored

    def test_rewire_redirects_traffic(self):
        assembly, client, server = wired_assembly()
        other = assembly.deploy(fresh_counter("other"), "leaf2")
        ReconfigurationTransaction(assembly).add(
            RewireBinding("client", "peer", target_component="other")
        ).execute()
        client.required_port("peer").call("increment", 5)
        assert other.state["total"] == 5
        assert server.state["total"] == 0

    def test_rewire_incompatible_target_rejected(self):
        assembly, _c, _s = wired_assembly()
        from repro.kernel import Component

        stranger = Component("stranger")
        stranger.provide("svc", Interface("Other", "1.0", [Operation("x")]))
        assembly.deploy(stranger, "leaf2")
        with pytest.raises(ConsistencyError):
            ReconfigurationTransaction(assembly).add(
                RewireBinding("client", "peer", target_component="stranger")
            ).execute()


class TestStrongReplacement:
    def test_replace_transfers_state_and_redirects(self):
        assembly, client, server = wired_assembly()
        client.required_port("peer").call("increment", 41)
        replacement = fresh_counter("server-v2")
        report = ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", replacement)
        ).execute()
        assert report.state is TransactionState.COMMITTED
        assert "server" not in assembly.registry
        # State carried over: next increment continues from 41.
        assert client.required_port("peer").call("increment", 1) == 42
        assert replacement.state["total"] == 42

    def test_replace_with_translator(self):
        assembly, client, _server = wired_assembly()
        client.required_port("peer").call("increment", 7)

        class CounterV2(CounterComponent):
            def on_initialize(self):
                self.state.setdefault("count", 0)

            def increment(self, amount=1):
                self.state["count"] += amount
                return self.state["count"]

            def total(self):
                return self.state["count"]

        replacement = CounterV2("server-v2")
        replacement.provide("svc", counter_interface())
        translator = StateTranslator(renames={"total": "count"})
        ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", replacement, translator=translator)
        ).execute()
        assert client.required_port("peer").call("total") == 7

    def test_replace_missing_port_rejected(self):
        assembly, _c, _s = wired_assembly()
        from repro.kernel import Component

        bad = Component("bad")
        bad.provide("other", counter_interface())
        with pytest.raises(ConsistencyError, match="lacks provided port"):
            ReconfigurationTransaction(assembly).add(
                ReplaceComponent("server", bad)
            ).execute()

    def test_no_message_loss_across_replacement(self):
        assembly, client, server = wired_assembly()
        binding = client.required_port("peer").binding
        sent = 0
        for _ in range(10):
            client.required_port("peer").call_async("increment", 1)
            sent += 1
        replacement = fresh_counter("server-v2")
        ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", replacement)
        ).execute()
        for _ in range(10):
            client.required_port("peer").call_async("increment", 1)
            sent += 1
        assert replacement.state["total"] == sent


class TestImplementationAndInterface:
    def test_replace_implementation(self):
        assembly, client, server = wired_assembly()

        class TurboCounter:
            def __init__(self, state):
                self.state = state

            def increment(self, amount=1):
                self.state["total"] += amount * 2
                return self.state["total"]

            def total(self):
                return self.state["total"]

        ReconfigurationTransaction(assembly).add(
            ReplaceImplementation("server", "svc", TurboCounter(server.state))
        ).execute()
        assert client.required_port("peer").call("increment", 5) == 10

    def test_replace_implementation_missing_operation_rejected(self):
        assembly, _c, _s = wired_assembly()

        class Partial:
            def total(self):
                return 0

        with pytest.raises(ConsistencyError, match="lacks operation"):
            ReconfigurationTransaction(assembly).add(
                ReplaceImplementation("server", "svc", Partial())
            ).execute()

    def test_compatible_interface_evolution(self):
        assembly, _c, server = wired_assembly()
        new_interface = server.provided_port("svc").interface.evolve(
            add=[Operation("reset", ())]
        )
        ReconfigurationTransaction(assembly).add(
            ModifyInterface("server", "svc", new_interface)
        ).execute()
        assert "reset" in server.provided_port("svc").interface
        assert check_assembly(assembly).consistent

    def test_breaking_evolution_requires_adapter(self):
        assembly, _c, server = wired_assembly()
        breaking = Interface("Counter", "2.0", [
            Operation("add", ("amount", "source")),
            Operation("total", ()),
        ])
        with pytest.raises(ConsistencyError, match="no adapter"):
            ReconfigurationTransaction(assembly).add(
                ModifyInterface("server", "svc", breaking)
            ).execute()

    def test_breaking_evolution_with_adapter_keeps_callers_working(self):
        assembly, client, server = wired_assembly()
        breaking = Interface("Counter", "2.0", [
            Operation("add", ("amount", "source")),
            Operation("total", ()),
        ])

        class ServerV2:
            def __init__(self, state):
                self.state = state

            def add(self, amount, source):
                self.state["total"] += amount
                self.state.setdefault("sources", []).append(source)
                return self.state["total"]

            def total(self):
                return self.state["total"]

        adapter = InterfaceAdapter(
            old=server.provided_port("svc").interface,
            new=breaking,
            renames={"increment": "add"},
            defaults={"increment": ("legacy",)},
            fill_optional={"increment": (1,)},  # old default amount
        )
        # Interface first, then implementation: each change validates
        # against the configuration as evolved by its predecessors.
        txn = (ReconfigurationTransaction(assembly)
               .add(ModifyInterface("server", "svc", breaking, adapter))
               .add(ReplaceImplementation("server", "svc",
                                          ServerV2(server.state))))
        report = txn.execute()
        assert report.state is TransactionState.COMMITTED
        # Old caller still uses increment/1 — adapter translates.
        assert client.required_port("peer").call("increment", 5) == 5
        assert server.state["sources"] == ["legacy"]

    def test_adapter_must_supply_missing_defaults(self):
        assembly, _c, server = wired_assembly()
        breaking = Interface("Counter", "2.0", [
            Operation("add", ("amount", "source")),
            Operation("total", ()),
        ])
        unsound = InterfaceAdapter(
            old=server.provided_port("svc").interface,
            new=breaking,
            renames={"increment": "add"},  # no default for 'source'
        )
        with pytest.raises(ConsistencyError, match="unsound"):
            ReconfigurationTransaction(assembly).add(
                ModifyInterface("server", "svc", breaking, unsound)
            ).execute()


class TestTransactionMechanics:
    def test_double_execute_rejected(self):
        assembly, _c, _s = wired_assembly()
        txn = ReconfigurationTransaction(assembly).add(
            AddComponent(fresh_counter("x"), "leaf2")
        )
        txn.execute()
        with pytest.raises(ReconfigurationError):
            txn.execute()

    def test_busy_region_rejected_synchronously(self):
        assembly, _c, server = wired_assembly()
        server._active_calls = 1
        txn = ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", fresh_counter("server2"))
        )
        with pytest.raises(QuiescenceError):
            txn.execute()
        assert server.lifecycle.can_serve  # untouched

    def test_rollback_restores_architecture(self):
        assembly, client, server = wired_assembly()
        before = assembly.describe()
        other = fresh_counter("other")
        # Second change fails validation at apply time via a poisoned
        # change; craft failure with an inconsistent follow-up.
        txn = (ReconfigurationTransaction(assembly)
               .add(AddComponent(other, "leaf2"))
               .add(RemoveBinding("client", "peer")))  # -> unbound port
        with pytest.raises(ConsistencyError):
            txn.execute()
        assert txn.report.state is TransactionState.ROLLED_BACK
        assert "other" not in assembly.registry  # first change undone
        assert client.required_port("peer").is_bound
        client.required_port("peer").call("increment", 3)
        assert server.state["total"] == 3

    def test_report_records_changes_and_window(self):
        assembly, _c, _s = wired_assembly()
        txn = ReconfigurationTransaction(assembly, name="expand").add(
            AddComponent(fresh_counter("x"), "leaf2")
        )
        report = txn.execute()
        assert report.name == "expand"
        assert report.applied_changes == ["add x on leaf2"]
        assert txn.window_cost() > 0


class TestAsyncExecution:
    def test_async_execution_buffers_traffic_during_window(self):
        assembly, client, _server = wired_assembly()
        sim = assembly.sim
        results = []

        # Traffic every 1ms.
        def traffic():
            client.required_port("peer").call_async(
                "increment", 1, on_result=results.append
            )

        from repro.events import PeriodicTimer

        timer = PeriodicTimer(sim, 0.001, traffic)
        replacement = fresh_counter("server-v2")
        done = []
        sim.at(lambda: ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", replacement)
        ).execute_async(on_done=done.append), when=0.0105)
        sim.run(until=0.1)
        timer.stop()
        sim.run()
        assert done and done[0].state is TransactionState.COMMITTED
        # Every sent message was eventually served, in order.
        assert results == sorted(results)
        sent = 99  # 1ms ticks in (0, 0.1): t=0.001..0.099
        assert replacement.state["total"] + 0 == results[-1]
        assert len(results) == sent

    def test_async_reports_blocked_duration(self):
        assembly, _client, _server = wired_assembly()
        sim = assembly.sim
        done = []
        ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", fresh_counter("server-v2"))
        ).execute_async(on_done=done.append)
        sim.run()
        report = done[0]
        assert report.state is TransactionState.COMMITTED
        assert report.blocked_duration > 0

"""Explicit revert-path tests for every change class."""

import pytest

from repro.errors import ConsistencyError, ReconfigurationError
from repro.events import Simulator
from repro.kernel import Assembly, Interface, Operation
from repro.netsim import full_mesh
from repro.reconfig import (
    AddBinding,
    AddComponent,
    MigrateComponent,
    ModifyInterface,
    RemoveBinding,
    RemoveComponent,
    ReplaceComponent,
    ReplaceImplementation,
    RewireBinding,
    SwapConnector,
)

from tests.helpers import CounterComponent, counter_interface


def fresh(name, require_peer=False):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    if require_peer:
        component.require("peer", counter_interface())
    return component


def wired():
    sim = Simulator()
    assembly = Assembly(full_mesh(sim, size=3))
    client = assembly.deploy(fresh("client", require_peer=True), "n0")
    server = assembly.deploy(fresh("server"), "n1")
    assembly.connect("client", "peer", target_component="server")
    return assembly, client, server


class TestApplyRevertRoundtrips:
    def test_add_component_revert(self):
        assembly, _c, _s = wired()
        change = AddComponent(fresh("extra"), "n2")
        change.apply(assembly)
        assert "extra" in assembly.registry
        change.revert(assembly)
        assert "extra" not in assembly.registry

    def test_add_binding_revert(self):
        assembly, _c, _s = wired()
        second = assembly.deploy(fresh("client2", require_peer=True), "n2")
        change = AddBinding("client2", "peer", target_component="server")
        change.apply(assembly)
        assert second.required_port("peer").is_bound
        change.revert(assembly)
        assert not second.required_port("peer").is_bound

    def test_remove_binding_revert_restores_target(self):
        assembly, client, server = wired()
        change = RemoveBinding("client", "peer")
        change.apply(assembly)
        assert not client.required_port("peer").is_bound
        change.revert(assembly)
        client.required_port("peer").call("increment", 2)
        assert server.state["total"] == 2

    def test_rewire_revert_restores_old_target(self):
        assembly, client, server = wired()
        other = assembly.deploy(fresh("other"), "n2")
        change = RewireBinding("client", "peer", target_component="other")
        change.apply(assembly)
        change.revert(assembly)
        client.required_port("peer").call("increment", 3)
        assert server.state["total"] == 3
        assert other.state["total"] == 0

    def test_replace_component_revert_reactivates_old(self):
        assembly, client, server = wired()
        client.required_port("peer").call("increment", 7)
        replacement = fresh("server-v2")
        change = ReplaceComponent("server", replacement)
        change.apply(assembly)
        assert server.lifecycle.is_quiescent
        change.revert(assembly)
        assert server.lifecycle.can_serve
        assert "server-v2" not in assembly.registry
        assert client.required_port("peer").call("total") == 7

    def test_replace_implementation_revert(self):
        assembly, client, server = wired()

        class Doubler:
            def __init__(self, state):
                self.state = state

            def increment(self, amount=1):
                self.state["total"] += amount * 2
                return self.state["total"]

            def total(self):
                return self.state["total"]

        change = ReplaceImplementation("server", "svc", Doubler(server.state))
        change.apply(assembly)
        assert client.required_port("peer").call("increment", 1) == 2
        change.revert(assembly)
        assert client.required_port("peer").call("increment", 1) == 3

    def test_modify_interface_revert_restores_version(self):
        assembly, _c, server = wired()
        old = server.provided_port("svc").interface
        new = old.evolve(add=[Operation("reset", ())])
        change = ModifyInterface("server", "svc", new)
        change.apply(assembly)
        assert "reset" in server.provided_port("svc").interface
        change.revert(assembly)
        assert server.provided_port("svc").interface is old

    def test_migrate_revert_returns_home(self):
        assembly, _c, server = wired()
        change = MigrateComponent("server", "n2")
        change.apply(assembly)
        assert server.node_name == "n2"
        change.revert(assembly)
        assert server.node_name == "n1"

    def test_remove_component_cannot_revert_after_stop(self):
        assembly, client, _server = wired()
        second = assembly.deploy(fresh("spare"), "n2")
        change = RemoveComponent("spare")
        change.validate(assembly)
        change.apply(assembly)
        with pytest.raises(ReconfigurationError, match="cannot be reverted"):
            change.revert(assembly)


class TestSwapConnectorRoundtrip:
    def build_with_connector(self):
        from repro.connectors import RpcConnector

        assembly, client, server = wired()
        assembly.disconnect(client.required_port("peer").binding)
        rpc = RpcConnector("front", counter_interface())
        rpc.attach("server", server.provided_port("svc"))
        assembly.add_connector(rpc)
        assembly.connect("client", "peer", target=rpc.endpoint("client"))
        return assembly, client, server, rpc

    def test_swap_and_revert(self):
        from repro.connectors import FailoverConnector

        assembly, client, server, rpc = self.build_with_connector()
        failover = FailoverConnector("front-v2", counter_interface())
        change = SwapConnector("front", failover,
                               role_mapping={"client": "client",
                                             "server": "replica"})
        change.validate(assembly)
        change.apply(assembly)
        assert "front-v2" in assembly.connectors
        assert not rpc.enabled
        client.required_port("peer").call("increment", 1)
        assert server.state["total"] == 1

        change.revert(assembly)
        assert "front" in assembly.connectors
        assert "front-v2" not in assembly.connectors
        assert rpc.enabled
        client.required_port("peer").call("increment", 1)
        assert server.state["total"] == 2

    def test_swap_missing_role_rejected(self):
        from repro.connectors import BroadcastConnector

        assembly, _client, _server, _rpc = self.build_with_connector()
        broadcast = BroadcastConnector("bcast", counter_interface())
        change = SwapConnector("front", broadcast)  # roles don't line up
        with pytest.raises(ConsistencyError, match="lacks role"):
            change.validate(assembly)

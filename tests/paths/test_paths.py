"""Unit tests for composition paths."""

import pytest

from repro.errors import PathError
from repro.paths import CompositionPath, PathFamily, PathPlanner, ServiceOption


def video_family():
    """The paper's example: extraction, coding, transfer for video."""
    family = PathFamily("video", ["extract", "encode", "transfer"])
    family.add_option(ServiceOption(
        "extract-raw", "extract", lambda v: f"raw({v})",
        output_format="raw", latency=1.0, quality=1.0))
    family.add_option(ServiceOption(
        "encode-h264", "encode", lambda v: f"h264({v})",
        input_format="raw", output_format="h264",
        latency=4.0, quality=1.0, bandwidth_required=8.0))
    family.add_option(ServiceOption(
        "encode-h263-lite", "encode", lambda v: f"h263({v})",
        input_format="raw", output_format="h263",
        latency=1.0, quality=0.4, bandwidth_required=1.0))
    family.add_option(ServiceOption(
        "send-stream", "transfer", lambda v: f"sent({v})",
        input_format="*", latency=1.0))
    return family


class TestFamily:
    def test_duplicate_stage_rejected(self):
        with pytest.raises(PathError):
            PathFamily("f", ["a", "a"])

    def test_empty_stages_rejected(self):
        with pytest.raises(PathError):
            PathFamily("f", [])

    def test_unknown_stage_rejected(self):
        family = PathFamily("f", ["a"])
        with pytest.raises(PathError):
            family.add_option(ServiceOption("x", "b", lambda v: v))

    def test_duplicate_option_rejected(self):
        family = PathFamily("f", ["a"])
        family.add_option(ServiceOption("x", "a", lambda v: v))
        with pytest.raises(PathError):
            family.add_option(ServiceOption("x", "a", lambda v: v))

    def test_options_for_unknown_stage_rejected(self):
        with pytest.raises(PathError):
            PathFamily("f", ["a"]).options_for("b")

    def test_all_paths_respects_formats(self):
        family = video_family()
        paths = family.all_paths()
        names = {tuple(p.names) for p in paths}
        assert names == {
            ("extract-raw", "encode-h264", "send-stream"),
            ("extract-raw", "encode-h263-lite", "send-stream"),
        }

    def test_all_paths_respects_feasibility(self):
        family = video_family()
        paths = family.all_paths({"bandwidth": 2.0})
        assert [p.names for p in paths] == [
            ["extract-raw", "encode-h263-lite", "send-stream"]
        ]


class TestCompositionPath:
    def test_execute_threads_value(self):
        family = video_family()
        path = family.all_paths({"bandwidth": 2.0})[0]
        assert path.execute("cam") == "sent(h263(raw(cam)))"

    def test_aggregates(self):
        family = video_family()
        paths = {tuple(p.names): p for p in family.all_paths()}
        hq = paths[("extract-raw", "encode-h264", "send-stream")]
        assert hq.total_latency == 6.0
        assert hq.total_quality == 1.0
        lq = paths[("extract-raw", "encode-h263-lite", "send-stream")]
        assert lq.total_quality == 0.4

    def test_empty_path_quality_zero(self):
        assert CompositionPath([]).total_quality == 0.0


class TestPlanner:
    def test_plans_cheapest_by_latency(self):
        planner = PathPlanner(video_family())
        path = planner.plan({"bandwidth": 100.0})
        assert path.names == ["extract-raw", "encode-h263-lite", "send-stream"]

    def test_quality_weight_flips_choice(self):
        planner = PathPlanner(video_family(), quality_weight=10.0)
        path = planner.plan({"bandwidth": 100.0})
        assert path.names == ["extract-raw", "encode-h264", "send-stream"]

    def test_bandwidth_constraint_forces_lite_codec(self):
        planner = PathPlanner(video_family(), quality_weight=10.0)
        path = planner.plan({"bandwidth": 2.0})
        assert path.names == ["extract-raw", "encode-h263-lite", "send-stream"]

    def test_planner_matches_exhaustive_enumeration(self):
        family = video_family()
        planner = PathPlanner(family, quality_weight=0.5)
        for bandwidth in (0.5, 1.0, 2.0, 8.0, 100.0):
            context = {"bandwidth": bandwidth}
            candidates = family.all_paths(context)
            if not candidates:
                with pytest.raises(PathError):
                    planner.plan(context)
                continue
            best = min(
                candidates,
                key=lambda p: sum(o.latency - 0.5 * o.quality for o in p.options),
            )
            assert planner.plan(context).names == best.names

    def test_infeasible_stage_raises(self):
        planner = PathPlanner(video_family())
        with pytest.raises(PathError, match="no feasible option"):
            planner.plan({"bandwidth": 0.1})

    def test_format_incompatible_family_raises(self):
        family = PathFamily("broken", ["a", "b"])
        family.add_option(ServiceOption("a1", "a", lambda v: v,
                                        output_format="x"))
        family.add_option(ServiceOption("b1", "b", lambda v: v,
                                        input_format="y"))
        with pytest.raises(PathError, match="format-incompatible"):
            PathPlanner(family).plan()

    def test_plan_count_tracks_usage(self):
        planner = PathPlanner(video_family())
        planner.plan({"bandwidth": 10})
        planner.plan({"bandwidth": 10})
        assert planner.plan_count == 2

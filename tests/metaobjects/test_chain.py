"""Unit tests for meta-object chains."""

import pytest

from repro.errors import ChainOrderError, MetaObjectError
from repro.kernel import Invocation
from repro.metaobjects import MetaChain, MetaObject, order, validate

from tests.helpers import make_counter


def passthrough(name, **kwargs):
    return MetaObject(name, lambda inv, proceed: proceed(inv), **kwargs)


def tracing(name, log, **kwargs):
    def body(invocation, proceed):
        log.append(f"{name}-in")
        result = proceed(invocation)
        log.append(f"{name}-out")
        return result

    return MetaObject(name, body, **kwargs)


class TestValidate:
    def test_duplicate_names_rejected(self):
        with pytest.raises(MetaObjectError, match="duplicate"):
            validate([passthrough("a"), passthrough("a")])

    def test_missing_required_rejected(self):
        with pytest.raises(MetaObjectError, match="mandatory"):
            validate([passthrough("a")], required=["security"])

    def test_exclusive_group_conflict(self):
        with pytest.raises(MetaObjectError, match="exclusive group"):
            validate([
                passthrough("gzip", exclusive_group="compression"),
                passthrough("lz4", exclusive_group="compression"),
            ])

    def test_unknown_ordering_reference(self):
        with pytest.raises(ChainOrderError, match="unknown wrapper"):
            validate([passthrough("a", must_precede=frozenset({"ghost"}))])

    def test_self_ordering_rejected(self):
        with pytest.raises(MetaObjectError):
            passthrough("a", must_follow=frozenset({"a"}))


class TestOrder:
    def test_priority_orders_descending(self):
        ordered = order([
            passthrough("low", priority=1),
            passthrough("high", priority=10),
            passthrough("mid", priority=5),
        ])
        assert [m.name for m in ordered] == ["high", "mid", "low"]

    def test_constraints_override_priority(self):
        ordered = order([
            passthrough("auth", priority=0,
                         must_precede=frozenset({"logging"})),
            passthrough("logging", priority=100),
        ])
        assert [m.name for m in ordered] == ["auth", "logging"]

    def test_must_follow(self):
        ordered = order([
            passthrough("metrics", must_follow=frozenset({"auth"})),
            passthrough("auth"),
        ])
        assert [m.name for m in ordered] == ["auth", "metrics"]

    def test_cycle_detected(self):
        with pytest.raises(ChainOrderError, match="cycle"):
            order([
                passthrough("a", must_precede=frozenset({"b"})),
                passthrough("b", must_precede=frozenset({"a"})),
            ])

    def test_unordered_modificatory_pair_rejected(self):
        with pytest.raises(ChainOrderError, match="modificatory"):
            order([
                passthrough("rewrite1", modificatory=True),
                passthrough("rewrite2", modificatory=True),
            ])

    def test_modificatory_pair_ok_with_priorities(self):
        ordered = order([
            passthrough("rewrite1", modificatory=True, priority=2),
            passthrough("rewrite2", modificatory=True, priority=1),
        ])
        assert [m.name for m in ordered] == ["rewrite1", "rewrite2"]

    def test_modificatory_pair_ok_with_constraint(self):
        ordered = order([
            passthrough("rewrite1", modificatory=True,
                         must_precede=frozenset({"rewrite2"})),
            passthrough("rewrite2", modificatory=True),
        ])
        assert [m.name for m in ordered] == ["rewrite1", "rewrite2"]

    def test_strictness_can_be_relaxed(self):
        ordered = order(
            [passthrough("r1", modificatory=True),
             passthrough("r2", modificatory=True)],
            strict_modificatory=False,
        )
        assert len(ordered) == 2

    def test_transitive_ordering_satisfies_modificatory_rule(self):
        ordered = order([
            passthrough("r1", modificatory=True,
                        must_precede=frozenset({"mid"})),
            passthrough("mid", must_precede=frozenset({"r2"})),
            passthrough("r2", modificatory=True),
        ])
        assert [m.name for m in ordered] == ["r1", "mid", "r2"]


class TestMetaChain:
    def test_execution_order(self):
        log = []
        chain = MetaChain("c", [
            tracing("inner", log, priority=1),
            tracing("outer", log, priority=10),
        ])
        component = make_counter()
        component.provided_port("svc").add_interceptor(chain.interceptor())
        component.provided_port("svc").invoke(Invocation("total"))
        assert log == ["outer-in", "inner-in", "inner-out", "outer-out"]

    def test_conditional_metaobject_skipped(self):
        log = []
        chain = MetaChain("c", [
            tracing("picky", log,
                    condition=lambda inv: inv.operation == "increment"),
        ])
        component = make_counter()
        component.provided_port("svc").add_interceptor(chain.interceptor())
        component.provided_port("svc").invoke(Invocation("total"))
        assert log == []
        component.provided_port("svc").invoke(Invocation("increment", (1,)))
        assert log == ["picky-in", "picky-out"]

    def test_runtime_add_revalidates(self):
        chain = MetaChain("c", [passthrough("gzip", exclusive_group="comp")])
        with pytest.raises(MetaObjectError):
            chain.add(passthrough("lz4", exclusive_group="comp"))
        assert chain.order_names == ["gzip"]  # rollback kept the chain intact

    def test_runtime_add_reorders(self):
        chain = MetaChain("c", [passthrough("a", priority=1)])
        chain.add(passthrough("b", priority=5))
        assert chain.order_names == ["b", "a"]

    def test_remove_mandatory_rejected(self):
        chain = MetaChain("c", [passthrough("sec", mandatory=True)])
        with pytest.raises(MetaObjectError, match="mandatory"):
            chain.remove("sec")

    def test_remove_unknown_rejected(self):
        with pytest.raises(MetaObjectError):
            MetaChain("c").remove("ghost")

    def test_remove_then_len(self):
        chain = MetaChain("c", [passthrough("a"), passthrough("b")])
        chain.remove("a")
        assert len(chain) == 1

    def test_live_interceptor_sees_chain_updates(self):
        log = []
        chain = MetaChain("c", [tracing("a", log)])
        component = make_counter()
        component.provided_port("svc").add_interceptor(chain.interceptor())
        chain.add(tracing("b", log, priority=5))
        component.provided_port("svc").invoke(Invocation("total"))
        assert log == ["b-in", "a-in", "a-out", "b-out"]

    def test_fire_count_tracked(self):
        meta = passthrough("a")
        chain = MetaChain("c", [meta])
        component = make_counter()
        component.provided_port("svc").add_interceptor(chain.interceptor())
        component.provided_port("svc").invoke(Invocation("total"))
        assert meta.fire_count == 1

"""ReconfigurationTransaction × WriteAheadLog integration.

Every phase transition must hit the log *before* the in-memory mutation,
and the failure paths must journal their outcome without ever masking
the in-memory rollback.
"""

import pytest

from repro.durability import (
    MemoryStore,
    WriteAheadLog,
    assembly_checksum,
)
from repro.events import Simulator
from repro.kernel import Assembly
from repro.netsim import star
from repro.reconfig import (
    AddComponent,
    Change,
    ReconfigurationTransaction,
    TransactionState,
)

from tests.durability.helpers import (
    build_assembly,
    build_changes,
    fresh_counter,
    post_checksum,
    pre_checksum,
    run_journaled,
)


class ExplodingChange(Change):
    """Applies never; used to drive the abort/rollback journal paths."""

    description = "exploding change"

    def apply(self, assembly):
        raise RuntimeError("boom")

    def revert(self, assembly):
        pass


class TestForwardPath:
    def test_committed_transaction_journals_every_phase(self):
        store = MemoryStore()
        _assembly, txn, crashed = run_journaled(store)
        assert not crashed
        assert txn.report.state is TransactionState.COMMITTED
        wal = WriteAheadLog(store)
        assert wal.phases("txn-1") == [
            "intent", "quiesce", "apply", "apply", "commit", "post-commit",
        ]

    def test_intent_checksum_matches_the_builder(self):
        store = MemoryStore()
        run_journaled(store)
        intent = WriteAheadLog(store).records("txn-1")[0]
        assert intent["pre_checksum"] == pre_checksum()
        assert intent["changes"] == ["add extra on leaf2",
                                     "replace server with server2"]

    def test_post_commit_checksum_matches_the_committed_state(self):
        store = MemoryStore()
        assembly, _txn, _crashed = run_journaled(store)
        post = WriteAheadLog(store).records("txn-1")[-1]
        assert post["post_checksum"] == assembly_checksum(assembly)
        assert post["post_checksum"] == post_checksum()

    def test_apply_records_precede_mutation_with_payloads(self):
        store = MemoryStore()
        run_journaled(store)
        records = WriteAheadLog(store).records("txn-1")
        applies = [r for r in records if r["phase"] == "apply"]
        assert [r["index"] for r in applies] == [0, 1]
        replace = applies[1]["payload"]
        assert replace["old"] == "server"
        assert replace["new"] == "server2"
        assert replace["transfer"] is True
        assert replace["state_keys"] == ["total"]

    def test_replacement_state_snapshot_is_journaled(self):
        store = MemoryStore()
        run_journaled(store)
        snapshots = WriteAheadLog(store).snapshots("txn-1")
        assert len(snapshots) == 1
        assert snapshots[0]["snapshot"] == {"total": 7}

    def test_unjournaled_transaction_writes_nothing(self):
        assembly = build_assembly()
        txn = ReconfigurationTransaction(assembly)
        for change in build_changes(assembly):
            txn.add(change)
        txn.execute()
        assert txn.wal is None
        assert txn.report.wal_errors == []


class TestFailurePaths:
    def test_nothing_applied_journals_abort(self):
        store = MemoryStore()
        assembly = build_assembly()
        wal = WriteAheadLog(store)
        txn = (ReconfigurationTransaction(assembly, name="t-abort", wal=wal)
               .add(ExplodingChange()))
        with pytest.raises(RuntimeError):
            txn.execute()
        assert txn.report.state is TransactionState.FAILED
        phases = wal.phases("t-abort")
        assert phases == ["intent", "quiesce", "apply", "abort"]
        assert assembly_checksum(assembly) == pre_checksum()

    def test_partial_failure_journals_rollback_pair(self):
        store = MemoryStore()
        assembly = build_assembly()
        wal = WriteAheadLog(store)
        txn = (ReconfigurationTransaction(assembly, name="t-rb", wal=wal)
               .add(AddComponent(fresh_counter("extra"), "leaf2"))
               .add(ExplodingChange()))
        with pytest.raises(RuntimeError):
            txn.execute()
        assert txn.report.state is TransactionState.ROLLED_BACK
        phases = wal.phases("t-rb")
        assert phases[-2:] == ["rollback-begin", "rollback"]
        rollback = wal.records("t-rb")[-1]
        assert rollback["reverted"] == ["add extra on leaf2"]
        assert assembly_checksum(assembly) == pre_checksum()

    def test_async_execution_journals_the_same_phases(self):
        store = MemoryStore()
        sim = Simulator()
        assembly = Assembly(star(sim, leaves=3))
        assembly.deploy(fresh_counter("server"), "leaf1")
        wal = WriteAheadLog(store)
        done = []
        txn = (ReconfigurationTransaction(assembly, name="t-async", wal=wal)
               .add(AddComponent(fresh_counter("extra"), "leaf2")))
        txn.execute_async(on_done=done.append)
        sim.run()
        assert done[0].state is TransactionState.COMMITTED
        assert wal.phases("t-async") == [
            "intent", "quiesce", "apply", "commit", "post-commit",
        ]

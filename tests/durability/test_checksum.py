"""Deterministic configuration checksums."""

from repro.durability import assembly_checksum, assembly_document

from tests.durability.helpers import build_assembly, build_changes
from repro.reconfig import ReconfigurationTransaction


class TestChecksum:
    def test_same_builder_same_checksum(self):
        assert assembly_checksum(build_assembly()) \
            == assembly_checksum(build_assembly())

    def test_checksum_is_hex_sha256(self):
        checksum = assembly_checksum(build_assembly())
        assert len(checksum) == 64
        int(checksum, 16)

    def test_reconfiguration_changes_the_checksum(self):
        assembly = build_assembly()
        before = assembly_checksum(assembly)
        txn = ReconfigurationTransaction(assembly)
        for change in build_changes(assembly):
            txn.add(change)
        txn.execute()
        assert assembly_checksum(assembly) != before

    def test_state_mutation_changes_the_checksum(self):
        assembly = build_assembly()
        before = assembly_checksum(assembly)
        assembly.component("server").state["total"] = 99
        assert assembly_checksum(assembly) != before


class TestDocument:
    def test_components_sorted_by_name(self):
        document = assembly_document(build_assembly())
        names = [entry["name"] for entry in document["components"]]
        assert names == sorted(names)
        assert names == ["client", "server"]

    def test_document_captures_placement_and_state(self):
        document = assembly_document(build_assembly())
        server = next(entry for entry in document["components"]
                      if entry["name"] == "server")
        assert server["node"] == "leaf1"
        assert server["state"]["total"] == 7

    def test_document_captures_bindings(self):
        document = assembly_document(build_assembly())
        assert document["bindings"]
        assert any("client" in line for line in document["bindings"])

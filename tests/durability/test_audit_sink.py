"""Durable persistence of the RAML decision audit."""

import pytest

from repro import telemetry
from repro.durability import (
    AUDIT_LOG,
    DurableAuditSink,
    MemoryStore,
    WriteAheadLog,
)
from repro.errors import DurabilityError, StoreError
from repro.events import Simulator
from repro.injectors import FlakyStore
from repro.kernel import Assembly
from repro.netsim import star
from repro.reconfig import AddComponent, ReconfigurationTransaction
from repro.telemetry.audit import AuditLog

from tests.durability.helpers import fresh_counter


class TestSinkMechanics:
    def test_records_persist_in_canonical_shape(self):
        log = AuditLog()
        sink = DurableAuditSink(MemoryStore())
        log.add_sink(sink)
        log.record(1.5, "raml.decision", {"constraint": "latency"})
        assert sink.persisted == 1
        assert sink.load() == [
            {"time": 1.5, "kind": "raml.decision", "constraint": "latency"},
        ]

    def test_removed_sink_stops_observing(self):
        log = AuditLog()
        sink = DurableAuditSink(MemoryStore())
        log.add_sink(sink)
        log.record(0.0, "a", {})
        log.remove_sink(sink)
        log.record(1.0, "b", {})
        assert sink.persisted == 1

    def test_on_error_raise_propagates_backend_failure(self):
        log = AuditLog()
        sink = DurableAuditSink(
            FlakyStore(MemoryStore(), fail_after=1))
        log.add_sink(sink)
        with pytest.raises(StoreError):
            log.record(0.0, "a", {})
        assert sink.dropped == 1

    def test_on_error_collect_counts_the_loss(self):
        log = AuditLog()
        sink = DurableAuditSink(
            FlakyStore(MemoryStore(), fail_after=1), on_error="collect")
        log.add_sink(sink)
        log.record(0.0, "a", {})
        log.record(1.0, "b", {})
        assert sink.dropped == 1
        assert sink.persisted == 1
        assert sink.errors

    def test_invalid_on_error_rejected(self):
        with pytest.raises(DurabilityError):
            DurableAuditSink(MemoryStore(), on_error="ignore")


class TestTracerIntegration:
    def wired(self, store):
        sim = Simulator()
        tracer = telemetry.configure(sim, sample_rate=1.0, seed=3)
        assembly = Assembly(star(sim, leaves=3))
        assembly.deploy(fresh_counter("server"), "leaf1")
        sink = DurableAuditSink(store).attach(tracer)
        return sim, assembly, sink

    def run_reconfig(self, store):
        _sim, assembly, sink = self.wired(store)
        txn = (ReconfigurationTransaction(assembly, name="t-audit")
               .add(AddComponent(fresh_counter("extra"), "leaf2")))
        txn.execute()
        return sink

    def test_reconfig_phases_stream_into_the_store(self):
        sink = self.run_reconfig(MemoryStore())
        kinds = [record["kind"] for record in sink.load()]
        assert "reconfig.phase" in kinds
        assert sink.persisted == len(sink.load())

    def test_detach_unsubscribes(self):
        store = MemoryStore()
        _sim, assembly, sink = self.wired(store)
        sink.detach()
        (ReconfigurationTransaction(assembly, name="t-quiet")
         .add(AddComponent(fresh_counter("extra"), "leaf2"))
         .execute())
        assert sink.persisted == 0

    def test_same_seed_audit_streams_are_byte_identical(self):
        from repro.durability import canonical_json

        streams = []
        for _ in range(2):
            sink = self.run_reconfig(MemoryStore())
            streams.append(canonical_json({"records": sink.load()}))
        assert streams[0] == streams[1]

    def test_audit_and_wal_share_one_store(self):
        store = MemoryStore()
        _sim, assembly, sink = self.wired(store)
        txn = (ReconfigurationTransaction(
            assembly, name="t-both", wal=WriteAheadLog(store))
            .add(AddComponent(fresh_counter("extra"), "leaf2")))
        txn.execute()
        assert AUDIT_LOG in store.logs()
        assert "reconfig-wal" in store.logs()

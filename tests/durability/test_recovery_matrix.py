"""The fault-injection crash matrix.

Crash at every WAL phase point, before and after the record becomes
durable, on both backends — then restart, rebuild, recover, and require
the acceptance rule: the recovered assembly passes ``check_assembly``
and hashes to exactly the pre- or post-reconfiguration checksum, never a
hybrid.  The decision rule is fixed: a log containing the ``commit``
marker rolls forward; anything short of it rolls back.
"""

import pytest

from repro.durability import (
    CLEAN,
    ROLL_BACK,
    ROLL_FORWARD,
    MemoryStore,
    SqliteStore,
    WriteAheadLog,
    decide,
    recover,
)
from repro.errors import RecoveryError
from repro.injectors import CrashInjector

from tests.durability.helpers import (
    FORWARD_POINTS,
    build_assembly,
    build_changes,
    post_checksum,
    pre_checksum,
    run_journaled,
)

#: (point, when) → does the durable log contain the commit marker?
MATRIX = [
    (point, when)
    for point in FORWARD_POINTS
    for when in ("before", "after")
]


def expected_mode(point, when):
    if point == "intent" and when == "before":
        return CLEAN  # nothing durable: the transaction never existed
    committed = (
        (point == "commit" and when == "after")
        or point == "post-commit"
    )
    return ROLL_FORWARD if committed else ROLL_BACK


def make_store(backend, tmp_path):
    if backend == "memory":
        return MemoryStore()
    return SqliteStore(str(tmp_path / "crash.db"))


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
@pytest.mark.parametrize("point,when", MATRIX)
class TestCrashMatrix:
    def test_recovery_reaches_pre_or_post_never_hybrid(
            self, backend, point, when, tmp_path):
        store = make_store(backend, tmp_path)
        _assembly, _txn, crashed = run_journaled(
            store, crash=CrashInjector(point, when=when))
        assert crashed

        fresh = build_assembly()
        report = recover(store, fresh, build_changes(fresh))
        mode = expected_mode(point, when)
        assert report.mode == mode
        assert report.consistent
        if mode == ROLL_FORWARD:
            assert report.checksum == post_checksum()
        else:
            assert report.checksum == pre_checksum()

    def test_second_recovery_is_idempotent(
            self, backend, point, when, tmp_path):
        store = make_store(backend, tmp_path)
        run_journaled(store, crash=CrashInjector(point, when=when))

        fresh = build_assembly()
        first = recover(store, fresh, build_changes(fresh))
        again = build_assembly()
        second = recover(store, again, build_changes(again))
        assert second.mode == first.mode
        assert second.checksum == first.checksum

    def test_same_seed_recovery_audit_is_byte_identical(
            self, backend, point, when, tmp_path):
        outputs = []
        for run in range(2):
            if backend == "memory":
                store = MemoryStore()
            else:
                store = SqliteStore(str(tmp_path / f"crash{run}.db"))
            run_journaled(store, crash=CrashInjector(point, when=when))
            fresh = build_assembly()
            report = recover(store, fresh, build_changes(fresh))
            outputs.append(report.to_json())
        assert outputs[0] == outputs[1]


class TestDecisionRule:
    def test_decide_is_the_commit_marker_rule(self):
        assert decide(["intent", "quiesce", "apply"]) == ROLL_BACK
        assert decide(["intent", "quiesce", "apply", "commit"]) \
            == ROLL_FORWARD
        assert decide([]) == ROLL_BACK

    def test_clean_log_reports_clean(self):
        fresh = build_assembly()
        report = recover(MemoryStore(), fresh, build_changes(fresh))
        assert report.mode == CLEAN
        assert report.checksum == pre_checksum()

    def test_recovered_record_lands_in_the_log(self):
        store = MemoryStore()
        run_journaled(store, crash=CrashInjector("apply:1"))
        fresh = build_assembly()
        recover(store, fresh, build_changes(fresh))
        wal = WriteAheadLog(store)
        assert wal.phases("txn-1")[-1] == "recovered"
        record = wal.records("txn-1")[-1]
        assert record["mode"] == ROLL_BACK


class TestGuards:
    def test_nondeterministic_builder_is_rejected(self):
        store = MemoryStore()
        run_journaled(store, crash=CrashInjector("apply:1"))
        drifted = build_assembly()
        drifted.component("server").state["total"] = 12345
        with pytest.raises(RecoveryError, match="not deterministic"):
            recover(store, drifted, build_changes(drifted))

    def test_mismatched_change_list_is_rejected(self):
        store = MemoryStore()
        run_journaled(store, crash=CrashInjector("apply:1"))
        fresh = build_assembly()
        with pytest.raises(RecoveryError, match="journaled intent"):
            recover(store, fresh, build_changes(fresh)[:1])

    def test_torn_log_without_intent_is_rejected(self):
        store = MemoryStore()
        WriteAheadLog(store).commit("ghost")
        fresh = build_assembly()
        with pytest.raises(RecoveryError, match="torn"):
            recover(store, fresh, build_changes(fresh), txn="ghost")

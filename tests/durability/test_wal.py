"""WriteAheadLog journaling and read-back."""

import pytest

from repro.durability import (
    SNAPSHOT_LOG,
    WAL_LOG,
    MemoryStore,
    WalPhase,
    WriteAheadLog,
)
from repro.errors import WalError


@pytest.fixture
def wal():
    return WriteAheadLog(MemoryStore())


class TestJournaling:
    def test_unknown_phase_rejected(self, wal):
        with pytest.raises(WalError):
            wal.journal("t1", "vibe-check")

    def test_records_carry_txn_and_phase(self, wal):
        wal.intent("t1", "t1", ["add x"], "abc")
        wal.quiesce("t1", ["x"])
        records = wal.records("t1")
        assert [r["phase"] for r in records] == ["intent", "quiesce"]
        assert all(r["txn"] == "t1" for r in records)

    def test_intent_carries_changes_and_pre_checksum(self, wal):
        wal.intent("t1", "t1", ["add x", "replace y"], "cafe")
        record = wal.records("t1")[0]
        assert record["changes"] == ["add x", "replace y"]
        assert record["pre_checksum"] == "cafe"

    def test_apply_records_are_indexed(self, wal):
        wal.apply("t1", 0, "add x", {"k": 1})
        wal.apply("t1", 1, "replace y")
        records = wal.records("t1")
        assert records[0]["index"] == 0
        assert records[0]["payload"] == {"k": 1}
        assert records[1]["index"] == 1
        assert records[1]["payload"] == {}

    def test_default_log_name(self, wal):
        wal.commit("t1")
        assert wal.store.logs() == [WAL_LOG]


class TestReadback:
    def test_records_filtered_by_txn(self, wal):
        wal.intent("t1", "t1", [], "a")
        wal.intent("t2", "t2", [], "b")
        wal.commit("t2")
        assert len(wal.records()) == 3
        assert [r["phase"] for r in wal.records("t2")] \
            == ["intent", "commit"]

    def test_transactions_in_first_appearance_order(self, wal):
        wal.intent("t1", "t1", [], "a")
        wal.intent("t2", "t2", [], "b")
        wal.commit("t1")
        assert wal.transactions() == ["t1", "t2"]

    def test_last_txn_is_latest_intent(self, wal):
        assert wal.last_txn() is None
        wal.intent("t1", "t1", [], "a")
        wal.intent("t2", "t2", [], "b")
        assert wal.last_txn() == "t2"

    def test_phases_and_has_phase(self, wal):
        wal.intent("t1", "t1", [], "a")
        wal.commit("t1")
        assert wal.phases("t1") == [WalPhase.INTENT, WalPhase.COMMIT]
        assert wal.has_phase("t1", WalPhase.COMMIT)
        assert not wal.has_phase("t1", WalPhase.ROLLBACK)


class TestSnapshots:
    def test_snapshots_kept_out_of_the_phase_log(self, wal):
        wal.intent("t1", "t1", [], "a")
        wal.snapshot("t1", "replace server", {"total": 7})
        assert wal.phases("t1") == [WalPhase.INTENT]
        assert sorted(wal.store.logs()) == sorted([SNAPSHOT_LOG, WAL_LOG])

    def test_snapshots_filtered_by_txn(self, wal):
        wal.snapshot("t1", "replace server", {"total": 7})
        wal.snapshot("t2", "replace cache", {"total": 9})
        assert wal.snapshots("t1") == [
            {"txn": "t1", "change": "replace server",
             "snapshot": {"total": 7}},
        ]
        assert len(wal.snapshots()) == 2

"""Deterministic builder fixtures for the crash-recovery matrix.

Recovery's contract is a *deterministic builder*: the same code that
built the pre-crash system rebuilds it after restart and hands
:func:`repro.durability.recover` fresh change objects.  These helpers
are that builder — every call to :func:`build_assembly` produces a
checksum-identical assembly, and :func:`build_changes` produces a fresh
copy of the canonical crash-matrix transaction (one structural add, one
strong replacement with state transfer).
"""

from repro.durability import WriteAheadLog, assembly_checksum
from repro.events import Simulator
from repro.injectors import SimulatedCrash
from repro.kernel import Assembly
from repro.netsim import star
from repro.reconfig import (
    AddComponent,
    ReconfigurationTransaction,
    ReplaceComponent,
)

from tests.helpers import CounterComponent, counter_interface


def fresh_counter(name, total=0):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    component.state["total"] = total
    return component


def fresh_client(name="client"):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    component.require("peer", counter_interface())
    return component


def build_assembly():
    """The pre-reconfiguration system: client → server on a 3-leaf star."""
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=3))
    assembly.deploy(fresh_client(), "leaf0")
    assembly.deploy(fresh_counter("server", total=7), "leaf1")
    assembly.connect("client", "peer", target_component="server")
    return assembly


def build_changes(assembly):
    """Fresh change objects for the canonical matrix transaction."""
    return [
        AddComponent(fresh_counter("extra"), "leaf2"),
        ReplaceComponent("server", fresh_counter("server2")),
    ]


#: Crash-matrix point keys of the canonical transaction's forward path,
#: in journal order (two changes → two apply points).
FORWARD_POINTS = ("intent", "quiesce", "apply:0", "apply:1",
                  "commit", "post-commit")


def pre_checksum():
    return assembly_checksum(build_assembly())


def post_checksum():
    """Checksum after the canonical transaction commits cleanly."""
    assembly = build_assembly()
    txn = ReconfigurationTransaction(assembly, name="probe")
    for change in build_changes(assembly):
        txn.add(change)
    txn.execute()
    return assembly_checksum(assembly)


def run_journaled(store, *, name="txn-1", crash=None, wal_log=None):
    """Run the canonical transaction journaled into ``store``.

    Returns ``(assembly, txn, crashed)``; with a ``crash`` injector
    armed, the :class:`SimulatedCrash` is swallowed here (the in-memory
    assembly is abandoned, exactly like a process death) and ``crashed``
    reports whether it fired.
    """
    assembly = build_assembly()
    wal = (WriteAheadLog(store) if wal_log is None
           else WriteAheadLog(store, wal_log))
    if crash is not None:
        crash.arm(wal)
    txn = ReconfigurationTransaction(assembly, name=name, wal=wal)
    for change in build_changes(assembly):
        txn.add(change)
    crashed = False
    try:
        txn.execute()
    except SimulatedCrash:
        crashed = True
    return assembly, txn, crashed

"""Real process-kill recovery over the sqlite backend.

The in-process matrix simulates crashes with a ``BaseException``; this
one runs the journaled transaction in a child process that ``os._exit``s
at the armed point, then recovers in *this* process from nothing but the
sqlite file — the full restart story.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.durability import (
    ROLL_BACK,
    ROLL_FORWARD,
    SqliteStore,
    recover,
)

from tests.durability.helpers import (
    build_assembly,
    build_changes,
    post_checksum,
    pre_checksum,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

CRASH_SCRIPT = """
import sys
from repro.durability import SqliteStore, WriteAheadLog
from repro.injectors import CrashInjector
from repro.reconfig import ReconfigurationTransaction
from tests.durability.helpers import build_assembly, build_changes

path, point, when = sys.argv[1], sys.argv[2], sys.argv[3]
store = SqliteStore(path)
wal = WriteAheadLog(store)
CrashInjector(point, when=when, mode="exit").arm(wal)
assembly = build_assembly()
txn = ReconfigurationTransaction(assembly, name="txn-kill", wal=wal)
for change in build_changes(assembly):
    txn.add(change)
txn.execute()
"""


def crash_child(db_path, point, when):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)])
    return subprocess.run(
        [sys.executable, "-c", CRASH_SCRIPT, str(db_path), point, when],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=60)


@pytest.mark.parametrize("point,when,mode", [
    ("apply:1", "after", ROLL_BACK),
    ("commit", "before", ROLL_BACK),
    ("commit", "after", ROLL_FORWARD),
    ("post-commit", "before", ROLL_FORWARD),
])
def test_killed_process_recovers_from_the_sqlite_file(
        tmp_path, point, when, mode):
    db_path = tmp_path / "wal.db"
    proc = crash_child(db_path, point, when)
    assert proc.returncode == 137, proc.stderr

    store = SqliteStore(str(db_path))
    fresh = build_assembly()
    report = recover(store, fresh, build_changes(fresh))
    assert report.mode == mode
    assert report.consistent
    expected = post_checksum() if mode == ROLL_FORWARD else pre_checksum()
    assert report.checksum == expected
    store.close()


def test_uncrashed_child_commits_and_restart_is_clean(tmp_path):
    db_path = tmp_path / "wal.db"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)])
    script = CRASH_SCRIPT.replace(
        'CrashInjector(point, when=when, mode="exit").arm(wal)', "pass")
    proc = subprocess.run(
        [sys.executable, "-c", script, str(db_path), "-", "-"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr

    store = SqliteStore(str(db_path))
    fresh = build_assembly()
    report = recover(store, fresh, build_changes(fresh))
    # The commit marker is durable, so restart rolls the rebuilt
    # pre-state forward to the committed configuration.
    assert report.mode == ROLL_FORWARD
    assert report.checksum == post_checksum()
    store.close()

"""Backend write-failure injection at every WAL phase.

The SNIPPETS §2–3 idiom: every durable write is a fault site.  A
forward-path store failure must fail/roll back the transaction cleanly
(not durably journaled means not done); a failure-path store failure
must never mask the in-memory rollback — it lands in
``report.wal_errors`` instead.  And rollback errors still raise
``RollbackError``, injected store faults or not.
"""

import pathlib

import pytest

from repro.durability import MemoryStore, WriteAheadLog, assembly_checksum
from repro.errors import RollbackError, StoreError
from repro.injectors import FlakyStore, record_point
from repro.reconfig import (
    Change,
    ReconfigurationTransaction,
    TransactionState,
)

from tests.durability.helpers import (
    FORWARD_POINTS,
    build_assembly,
    build_changes,
    post_checksum,
    pre_checksum,
)


def journaled_txn(store, name="txn-1"):
    assembly = build_assembly()
    txn = ReconfigurationTransaction(assembly, name=name,
                                     wal=WriteAheadLog(store))
    for change in build_changes(assembly):
        txn.add(change)
    return assembly, txn


class ExplodingChange(Change):
    description = "exploding change"

    def apply(self, assembly):
        raise RuntimeError("boom")

    def revert(self, assembly):
        pass


class UnrevertableChange(Change):
    description = "unrevertable change"

    def apply(self, assembly):
        pass

    def revert(self, assembly):
        raise RuntimeError("cannot undo")


@pytest.mark.parametrize("point", FORWARD_POINTS)
def test_write_failure_at_every_phase_reports_cleanly(point):
    store = FlakyStore(MemoryStore(), fail_point=point)
    assembly, txn = journaled_txn(store)

    if point == "post-commit":
        # Past the durable commit decision: informational journaling
        # must not un-commit — the failure is surfaced instead.
        txn.execute()
        assert txn.report.state is TransactionState.COMMITTED
        assert txn.report.wal_errors
        assert assembly_checksum(assembly) == post_checksum()
    else:
        with pytest.raises(StoreError):
            txn.execute()
        assert txn.report.state in (TransactionState.FAILED,
                                    TransactionState.ROLLED_BACK)
        assert "injected backend write failure" in txn.report.error
        assert assembly_checksum(assembly) == pre_checksum()
    assert store.injected == 1


def test_intent_failure_fails_before_touching_anything():
    store = FlakyStore(MemoryStore(), fail_point="intent")
    assembly, txn = journaled_txn(store)
    with pytest.raises(StoreError):
        txn.execute()
    assert txn.report.state is TransactionState.FAILED
    assert txn.report.applied_changes == []
    assert store.inner.logs() == []


def test_commit_failure_means_rolled_back():
    # Not durably committed means not done: the changes applied in
    # memory but the decision marker never landed, so they are undone.
    store = FlakyStore(MemoryStore(), fail_point="commit")
    assembly, txn = journaled_txn(store)
    with pytest.raises(StoreError):
        txn.execute()
    assert txn.report.state is TransactionState.ROLLED_BACK
    assert assembly_checksum(assembly) == pre_checksum()
    phases = WriteAheadLog(store.inner).phases("txn-1")
    assert "commit" not in phases
    assert phases[-2:] == ["rollback-begin", "rollback"]


def test_nth_append_failure_also_rolls_back():
    store = FlakyStore(MemoryStore(), fail_after=4)  # 4th append: apply:1
    assembly, txn = journaled_txn(store)
    with pytest.raises(StoreError):
        txn.execute()
    assert txn.report.state is TransactionState.ROLLED_BACK
    assert assembly_checksum(assembly) == pre_checksum()


def test_dying_store_still_rolls_back_in_memory():
    class DyingStore:
        """Goes down for good the moment the commit record arrives."""

        def __init__(self, inner):
            self.inner = inner
            self.dead = False

        def append(self, log, record):
            if record_point(record) == "commit":
                self.dead = True
            if self.dead:
                raise StoreError("backend gone")
            return self.inner.append(log, record)

        def __getattr__(self, name):
            return getattr(self.inner, name)

    store = DyingStore(MemoryStore())
    assembly, txn = journaled_txn(store)
    with pytest.raises(StoreError):
        txn.execute()
    # The in-memory rollback completed even though every failure-path
    # journal write also failed; the losses are surfaced, not raised.
    assert txn.report.state is TransactionState.ROLLED_BACK
    assert assembly_checksum(assembly) == pre_checksum()
    assert len(txn.report.wal_errors) == 2  # rollback-begin + rollback


def test_failure_path_store_errors_are_collected_not_raised():
    class DeadOnRollback(FlakyStore):
        def append(self, log, record):
            if record_point(record) in ("rollback-begin", "rollback"):
                raise StoreError("store died during rollback journaling")
            return self.inner.append(log, record)

    store = DeadOnRollback(MemoryStore(), fail_point="unused")
    assembly = build_assembly()
    txn = (ReconfigurationTransaction(
        assembly, name="t-collect", wal=WriteAheadLog(store))
        .add(build_changes(assembly)[0])
        .add(ExplodingChange()))
    with pytest.raises(RuntimeError, match="boom"):
        txn.execute()
    assert txn.report.state is TransactionState.ROLLED_BACK
    assert len(txn.report.wal_errors) == 2
    assert assembly_checksum(assembly) == pre_checksum()


def test_rollback_errors_still_raise_rollback_error():
    store = MemoryStore()
    assembly = build_assembly()
    wal = WriteAheadLog(store)
    txn = (ReconfigurationTransaction(assembly, name="t-rbfail", wal=wal)
           .add(UnrevertableChange())
           .add(ExplodingChange()))
    with pytest.raises(RollbackError, match="cannot undo"):
        txn.execute()
    # The journal narrates how far things got: the undo began but never
    # completed — no terminal "rollback" record.
    phases = wal.phases("t-rbfail")
    assert "rollback-begin" in phases
    assert "rollback" not in phases


def test_no_bare_except_in_the_durability_layer():
    # The SNIPPETS §2–3 contract: failures surface as typed errors,
    # never vanish into a bare ``except:``.
    import repro.durability as durability
    import repro.injectors.crash as crash

    sources = list(pathlib.Path(durability.__file__).parent.glob("*.py"))
    sources.append(pathlib.Path(crash.__file__))
    assert len(sources) >= 6
    for source in sources:
        assert "except:" not in source.read_text(), f"bare except in {source}"

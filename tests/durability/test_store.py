"""The Store protocol: both backends behind one contract."""

import pytest

from repro.durability import (
    MemoryStore,
    SqliteStore,
    Store,
    canonical_json,
    copy_log,
    iter_records,
    open_store,
)
from repro.errors import StoreError


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = MemoryStore()
    else:
        backend = SqliteStore(str(tmp_path / "wal.db"))
    yield backend
    backend.close()


class TestContract:
    def test_append_returns_monotonic_seqs_per_log(self, store):
        assert store.append("a", {"n": 1}) == 1
        assert store.append("a", {"n": 2}) == 2
        assert store.append("b", {"n": 1}) == 1

    def test_read_returns_seq_record_pairs_in_order(self, store):
        store.append("log", {"n": 1})
        store.append("log", {"n": 2})
        assert store.read("log") == [(1, {"n": 1}), (2, {"n": 2})]

    def test_read_from_start_offset(self, store):
        for n in range(5):
            store.append("log", {"n": n})
        assert [seq for seq, _ in store.read("log", start=4)] == [4, 5]

    def test_read_unknown_log_is_empty(self, store):
        assert store.read("nothing") == []

    def test_logs_lists_known_logs(self, store):
        store.append("b", {})
        store.append("a", {})
        assert store.logs() == ["a", "b"]

    def test_truncate_drops_one_log(self, store):
        store.append("keep", {"n": 1})
        store.append("drop", {"n": 1})
        store.append("drop", {"n": 2})
        assert store.truncate("drop") == 2
        assert store.read("drop") == []
        assert store.read("keep") == [(1, {"n": 1})]

    def test_closed_store_refuses_appends(self, store):
        store.close()
        with pytest.raises(StoreError):
            store.append("log", {})

    def test_satisfies_protocol(self, store):
        assert isinstance(store, Store)

    def test_unserializable_record_raises_store_error(self, store):
        circular = {}
        circular["self"] = circular
        with pytest.raises(StoreError):
            store.append("log", circular)


class TestSqlitePersistence:
    def test_records_survive_reopen(self, tmp_path):
        path = str(tmp_path / "wal.db")
        first = SqliteStore(path)
        first.append("log", {"n": 1})
        first.append("log", {"n": 2})
        first.close()

        second = SqliteStore(path)
        assert second.read("log") == [(1, {"n": 1}), (2, {"n": 2})]
        assert second.append("log", {"n": 3}) == 3
        second.close()


class TestCanonicalJson:
    def test_keys_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_sets_and_tuples_serialize_deterministically(self):
        one = canonical_json({"s": {3, 1, 2}, "t": (1, 2)})
        two = canonical_json({"t": (1, 2), "s": {2, 3, 1}})
        assert one == two

    def test_unserializable_value_raises(self):
        circular = {}
        circular["self"] = circular
        with pytest.raises(StoreError):
            canonical_json(circular)


class TestOpenStore:
    def test_memory_url(self):
        assert isinstance(open_store("memory://"), MemoryStore)

    def test_sqlite_url(self, tmp_path):
        store = open_store(f"sqlite:///{tmp_path / 'x.db'}")
        assert isinstance(store, SqliteStore)
        store.close()

    def test_bare_path_is_sqlite(self, tmp_path):
        store = open_store(str(tmp_path / "y.db"))
        assert isinstance(store, SqliteStore)
        store.close()

    def test_unknown_scheme_raises(self):
        with pytest.raises(StoreError):
            open_store("redis://nope")


class TestUtilities:
    def test_copy_log_between_backends(self, tmp_path):
        source = MemoryStore()
        for n in range(3):
            source.append("log", {"n": n})
        target = SqliteStore(str(tmp_path / "copy.db"))
        assert copy_log(source, target, "log") == 3
        assert target.read("log") == source.read("log")
        target.close()

    def test_iter_records_flattens_logs(self):
        store = MemoryStore()
        store.append("a", {"n": 1})
        store.append("b", {"n": 2})
        assert list(iter_records(store, ["a", "b"])) == [
            ("a", 1, {"n": 1}),
            ("b", 1, {"n": 2}),
        ]

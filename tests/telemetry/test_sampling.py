"""Head-based sampling: determinism, always-on categories, inheritance."""

import math

import pytest

from repro.events import Simulator
from repro.telemetry import (
    ALWAYS_ON_CATEGORIES,
    Sampler,
    SamplingPolicy,
    Tracer,
    chrome_trace_json,
    install,
    jsonl_records,
    trace_checksum,
)


def make_tracer(rate, seed=0, **kwargs):
    return Tracer(Simulator(),
                  sampling=SamplingPolicy(rate=rate, seed=seed), **kwargs)


class TestSamplerStream:
    def test_same_seed_same_stream(self):
        a = Sampler(0.5, seed=3, stream=1)
        b = Sampler(0.5, seed=3, stream=1)
        assert [a.sample() for _ in range(200)] == \
               [b.sample() for _ in range(200)]

    def test_reset_replays_the_stream(self):
        sampler = Sampler(0.25, seed=9)
        first = [sampler.sample() for _ in range(100)]
        sampler.reset()
        assert [sampler.sample() for _ in range(100)] == first

    def test_streams_are_independent(self):
        spans = Sampler(0.5, seed=3, stream=1)
        kernel = Sampler(0.5, seed=3, stream=2)
        assert [spans.sample() for _ in range(64)] != \
               [kernel.sample() for _ in range(64)]

    def test_rate_hits_long_run_frequency(self):
        sampler = Sampler(0.1, seed=1)
        kept = sum(sampler.sample() for _ in range(20_000))
        assert 0.08 < kept / 20_000 < 0.12

    def test_extreme_rates(self):
        assert all(Sampler(1.0).sample() for _ in range(50))
        assert not any(Sampler(0.0).sample() for _ in range(50))

    def test_gap_matches_rate(self):
        sampler = Sampler(0.01, seed=4)
        gaps = [sampler.gap() for _ in range(2_000)]
        mean = sum(gaps) / len(gaps)
        # Geometric with p=0.01 has mean (1-p)/p ~= 99.
        assert 80 < mean < 120

    def test_gap_edges(self):
        assert Sampler(1.0).gap() == 0
        assert Sampler(0.0).gap() >= 1 << 60

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(rate=-0.1)
        with pytest.raises(ValueError):
            SamplingPolicy(rate=math.nan)


class TestHeadSampling:
    def test_children_inherit_root_fate(self):
        tracer = make_tracer(rate=0.3, seed=2)
        for i in range(300):
            with tracer.span("work", f"root{i}"):
                with tracer.span("work", f"child{i}"):
                    pass
        spans = tracer.spans
        roots = {s.name for s in spans if s.name.startswith("root")}
        children = {s.name for s in spans if s.name.startswith("child")}
        # Traces are kept or dropped whole: every surviving child's root
        # survives too, and vice versa.
        assert {n.replace("child", "root") for n in children} == roots
        assert 0 < len(roots) < 300

    def test_always_on_categories_bypass_sampling(self):
        tracer = make_tracer(rate=0.0)
        for cat in sorted(ALWAYS_ON_CATEGORIES):
            with tracer.span(cat, "decision"):
                pass
        with tracer.span("work", "chatty"):
            pass
        assert {s.category for s in tracer.spans} == ALWAYS_ON_CATEGORIES

    def test_custom_always_set(self):
        tracer = Tracer(Simulator(), sampling=SamplingPolicy(
            rate=0.0, always=frozenset({"qos"})))
        with tracer.span("qos", "kept"):
            pass
        with tracer.span("raml", "dropped"):
            pass
        assert [s.category for s in tracer.spans] == ["qos"]

    def test_sample_is_the_public_head_decision(self):
        tracer = make_tracer(rate=0.0)
        assert tracer.sample("raml") is True      # always-on
        assert tracer.sample("net.msg") is False  # rate 0
        tracer.enabled = False
        assert tracer.sample("raml") is False     # disabled beats always

    def test_emit_head_guard_inherits_to_children(self):
        tracer = make_tracer(rate=0.0)
        if tracer.sample("net.msg"):  # the caller-side contract
            tracer.emit("net.msg", "flow", 0.0, 1.0)
        assert tracer.spans == []

    def test_full_rate_keeps_everything(self):
        tracer = make_tracer(rate=1.0)
        for i in range(50):
            with tracer.span("work", f"s{i}"):
                pass
        assert len(tracer.spans) == 50


class TestSampledDeterminism:
    def _run(self, seed):
        tracer = make_tracer(rate=0.1, seed=seed)
        for i in range(500):
            with tracer.span("work", f"job{i}", index=i):
                tracer.sim.run(until=tracer.sim.now + 0.001)
        return tracer

    def test_same_seed_identical_span_set_and_bytes(self):
        a, b = self._run(seed=7), self._run(seed=7)
        assert [s.name for s in a.spans] == [s.name for s in b.spans]
        assert list(jsonl_records(a)) == list(jsonl_records(b))
        assert chrome_trace_json(a) == chrome_trace_json(b)
        assert trace_checksum(a) == trace_checksum(b)

    def test_different_seed_different_span_set(self):
        a, b = self._run(seed=7), self._run(seed=8)
        assert [s.name for s in a.spans] != [s.name for s in b.spans]

    def test_clear_resets_the_sampling_stream(self):
        tracer = make_tracer(rate=0.1, seed=7)

        def sweep():
            for i in range(500):
                with tracer.span("work", f"job{i}"):
                    pass
            return [s.name for s in tracer.spans]

        first = sweep()
        tracer.clear()
        assert sweep() == first

    def test_sampled_export_carries_meta_record(self):
        tracer = self._run(seed=7)
        records = list(jsonl_records(tracer))
        assert records[0]["type"] == "meta"
        assert records[0]["sampling_rate"] == 0.1
        assert records[0]["sampling_seed"] == 7

    def test_full_trace_export_has_no_meta_record(self):
        tracer = make_tracer(rate=1.0)
        with tracer.span("work", "s"):
            pass
        assert all(r["type"] != "meta" for r in jsonl_records(tracer))


class TestKernelSampling:
    """The skip-counter protocol between hooks and the event loop."""

    def _drive(self, rate, seed=0, events=2_000):
        sim = Simulator()
        tracer = install(sim, sampling=SamplingPolicy(rate=rate, seed=seed))

        def ping():
            pass

        sim.schedule_many((float(i) / 100, ping) for i in range(events))
        sim.run()
        return sim, tracer

    def test_full_rate_sees_every_event(self):
        _, tracer = self._drive(rate=1.0)
        assert tracer.kernel.events_seen == 2_000

    def test_sampled_rate_sees_a_fraction(self):
        _, tracer = self._drive(rate=0.1)
        seen = tracer.kernel.events_seen
        assert 120 < seen < 280  # ~200 expected

    def test_sampled_kernel_profile_is_seed_deterministic(self):
        _, a = self._drive(rate=0.05, seed=11)
        _, b = self._drive(rate=0.05, seed=11)
        assert a.kernel.events_seen == b.kernel.events_seen
        assert dict(a.kernel.edges) == dict(b.kernel.edges)
        _, c = self._drive(rate=0.05, seed=12)
        assert a.kernel.events_seen != c.kernel.events_seen

    def test_sampling_never_changes_simulation_results(self):
        def drive(rate):
            sim = Simulator()
            install(sim, sampling=SamplingPolicy(rate=rate, seed=3))
            order = []
            sim.schedule_many((1.0, order.append, (i,)) for i in range(100))
            sim.run()
            return order, sim.now

        assert drive(1.0) == drive(0.01) == drive(0.0)

    def test_events_detail_only_instants_traced_events(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail="events",
                         sampling=SamplingPolicy(rate=0.1, seed=5))

        def ping():
            pass

        sim.schedule_many((float(i), ping) for i in range(500))
        sim.run()
        kernel_instants = [i for i in tracer.instants
                           if i.category == "kernel"]
        assert len(kernel_instants) == tracer.kernel.events_seen
        assert 0 < len(kernel_instants) < 500

    def test_cancelled_unsampled_event_is_silent(self):
        sim = Simulator()
        tracer = install(sim, sampling=SamplingPolicy(rate=0.0, seed=1))
        handle = sim.schedule(lambda: None, delay=1.0)
        handle.cancel()
        sim.run()
        assert tracer.kernel.events_seen == 0
        assert tracer.kernel.sites == {}

"""Acceptance: the Figure-1 scenario exports a valid, deterministic trace.

Runs the paper's Figure-1 story (serving components behind a connector,
introspection up, adaptation then intercession down) with full telemetry
— kernel timeline, connector spans, message lineage over a 2-hop star
route, RAML decision audit — and checks that the Chrome ``trace_event``
export is structurally valid and byte-for-byte reproducible across two
identical runs.
"""

import json

from repro import Simulator, star
from repro.core import Raml, Response, custom
from repro.connectors import RpcConnector
from repro.events import PeriodicTimer
from repro.kernel import Assembly, Component, Interface, Operation
from repro.netsim import Message, MessageIdAllocator, use_allocator
from repro.telemetry import (
    chrome_trace,
    chrome_trace_json,
    install,
    instrument_assembly,
    trace_checksum,
)


def media_interface():
    return Interface("Media", "1.0", [Operation("render", ("frame",))])


class ServingComponent(Component):
    def on_initialize(self):
        self.state.setdefault("rendered", 0)
        self.state.setdefault("degraded", False)

    def render(self, frame):
        if self.state["degraded"]:
            raise RuntimeError(f"{self.name}: renderer wedged")
        self.state["rendered"] += 1
        return f"{self.name}:{frame}"


def run_scenario():
    """One fully-traced Figure-1 run; returns the tracer."""
    use_allocator(MessageIdAllocator(1))  # ids appear in the trace
    sim = Simulator()
    tracer = install(sim, kernel_detail="events")
    net = star(sim, leaves=3)
    assembly = Assembly(net, name="figure1")

    serving_a = ServingComponent("serving-a")
    serving_a.provide("svc", media_interface())
    assembly.deploy(serving_a, "leaf0")
    serving_b = ServingComponent("serving-b")
    serving_b.provide("svc", media_interface())
    assembly.deploy(serving_b, "leaf1")

    connector = RpcConnector("media-connector", media_interface())
    connector.attach("server", serving_a.provided_port("svc"))
    assembly.add_connector(connector)

    client = Component("client")
    client.require("media", media_interface())
    assembly.deploy(client, "leaf2")
    assembly.connect("client", "media", target=connector.endpoint("client"))
    instrument_assembly(tracer, assembly)

    raml = Raml(assembly, period=0.25, metric_window=1.0).instrument()

    def stream(event):
        if event.source.startswith("connector:") and event.kind == "error":
            raml.record_metric("render.errors", 1.0)

    raml.hub.subscribe(stream)

    def error_rate(view):
        if "render.errors" not in view.metrics:
            return []
        series = view.metrics.series("render.errors")
        if series.count > 2:
            return [f"{series.count} render errors in the last second"]
        return []

    def adapt(raml_, violations):
        if connector.retries == 0:
            connector.retries = 2

    def intercede(raml_, violations):
        active = connector.attachments["server"][0].target
        standby = (serving_b if active.component is serving_a
                   else serving_a).provided_port("svc")
        raml_.intercessor.swap_connector_attachment(
            "media-connector", "server", active, standby)
        raml_.metrics.series("render.errors").reset()

    raml.add_constraint(
        custom("render-error-rate", error_rate),
        Response(adapt=adapt, reconfigure=intercede, escalate_after=3),
    )
    raml.start()

    # Base-level traffic through the connector...
    def call():
        try:
            client.required_port("media").call("render", "f")
        except RuntimeError:
            pass

    traffic = PeriodicTimer(sim, 0.05, call, name="traffic")

    # ...and client->serving status reports over the 2-hop star route.
    net.node("leaf0").bind_endpoint("status", lambda node, message: None)

    def report():
        net.send(Message("leaf2", "leaf0", "status", size=128))

    reporter = PeriodicTimer(sim, 0.5, report, name="status-reporter")

    sim.at(lambda: serving_a.state.__setitem__("degraded", True), when=2.0)
    sim.run(until=6.0)
    traffic.stop()
    reporter.stop()
    raml.stop()
    assert serving_b.state["rendered"] > 0, "intercession must have fired"
    return tracer


class TestFigure1Trace:
    def test_trace_is_valid_and_complete(self):
        tracer = run_scenario()
        doc = chrome_trace(tracer)
        events = doc["traceEvents"]

        # Structurally valid trace_event JSON: serializable, and every
        # record carries a phase + pid (plus ts for non-metadata events).
        json.loads(chrome_trace_json(tracer))
        assert all("ph" in e and "pid" in e for e in events)
        assert all("ts" in e for e in events if e["ph"] != "M")

        # Kernel timeline made it into the export.
        kernel = [e for e in events
                  if e["ph"] == "i" and e.get("cat") == "kernel"]
        assert len(kernel) > 50

        # Message lineage: at least one delivered flow with two hop
        # children covering leaf2 -> hub -> leaf0.
        flows = [s for s in tracer.spans if s.category == "net.msg"
                 and s.args.get("outcome") == "delivered"]
        assert flows
        flow = flows[0]
        hops = [s for s in tracer.spans if s.category == "net.hop"
                and s.parent_id == flow.span_id]
        assert [h.name for h in hops] == ["leaf2->hub", "hub->leaf0"]

        # Connector activity was traced, including the failing calls.
        connector_spans = [s for s in tracer.spans
                           if s.category == "connector"]
        assert any(s.args["outcome"] == "error" for s in connector_spans)
        assert any(s.args["outcome"] == "ok" for s in connector_spans)

        # RAML decision audit: observation sweeps, the adapt->escalate
        # decisions and the intercession all left records.
        audit_kinds = tracer.audit.kinds()
        assert audit_kinds.get("raml.sweep", 0) > 0
        assert audit_kinds.get("raml.decision", 0) > 0
        assert audit_kinds.get("raml.intercession", 0) > 0
        decisions = tracer.audit.of_kind("raml.decision")
        actions = {r.fields["action"] for r in decisions}
        assert actions == {"adapt", "reconfigure"}

    def test_trace_deterministic_across_same_seed_runs(self):
        first = run_scenario()
        second = run_scenario()
        checksum = trace_checksum(first)
        assert checksum == trace_checksum(second)
        # Not vacuous: the trace has real content behind the checksum.
        assert len(chrome_trace(first)["traceEvents"]) > 100
        assert len(first.audit) > 0

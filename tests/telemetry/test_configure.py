"""telemetry.configure() and per-category sample-rate overrides."""

import json

import pytest

from repro.events import Simulator
from repro import telemetry
from repro.telemetry import (
    ALWAYS_ON_CATEGORIES,
    Sampler,
    SamplingPolicy,
    jsonl_records,
    trace_checksum,
)


@pytest.fixture
def sim():
    return Simulator()


class TestConfigure:
    def test_wires_tracer_sampler_and_ring(self, sim):
        tracer = telemetry.configure(sim, sample_rate=0.25, ring_slots=64,
                                     seed=9)
        assert sim.tracer is tracer
        assert tracer.enabled
        assert tracer.ring.capacity == 64
        assert tracer.sampling.rate == 0.25
        assert tracer.sampling.seed == 9
        assert tracer.kernel is not None  # aggregate detail by default

    def test_disabled_start(self, sim):
        tracer = telemetry.configure(sim, enabled=False)
        assert not tracer.enabled
        assert sim.hooks is None

    def test_no_kernel_hooks(self, sim):
        tracer = telemetry.configure(sim, kernel_detail=None)
        assert tracer.kernel is None
        assert sim.hooks is None

    def test_category_overrides_reach_the_policy(self, sim):
        tracer = telemetry.configure(
            sim, sample_rate=0.5, categories={"net.msg": 0.1})
        assert tracer.sampling.overrides == {"net.msg": 0.1}
        assert tracer.sampling.rate_for("net.msg") == 0.1
        assert tracer.sampling.rate_for("other") == 0.5

    def test_always_categories_ignore_overrides(self, sim):
        tracer = telemetry.configure(
            sim, sample_rate=0.0, categories={"raml": 0.0})
        assert tracer.sample("raml") is True
        assert tracer.sampling.rate_for("raml") == 1.0

    def test_custom_always_set(self, sim):
        tracer = telemetry.configure(sim, sample_rate=0.0,
                                     always={"special"})
        assert tracer.sample("special") is True
        assert tracer.sample("raml") is False


class TestOverrideValidation:
    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy(rate=0.5, overrides={"cat": 1.5})
        with pytest.raises(ValueError):
            SamplingPolicy(rate=0.5, overrides={"cat": -0.1})

    def test_global_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy(rate=2.0)


class TestOverrideBehaviour:
    def make(self, sim, **kwargs):
        return telemetry.configure(sim, kernel_detail=None, **kwargs)

    def test_zero_override_silences_a_category(self, sim):
        tracer = self.make(sim, sample_rate=1.0, categories={"chatty": 0.0})
        kept = sum(tracer.sample("chatty") for _ in range(500))
        assert kept == 0

    def test_one_override_keeps_everything(self, sim):
        tracer = self.make(sim, sample_rate=0.0, categories={"vital": 1.0})
        kept = sum(tracer.sample("vital") for _ in range(500))
        assert kept == 500

    def test_fractional_override_approximates_rate(self, sim):
        tracer = self.make(sim, sample_rate=1.0, seed=5,
                           categories={"net.msg": 0.25})
        kept = sum(tracer.sample("net.msg") for _ in range(4000))
        assert 0.20 < kept / 4000 < 0.30

    def test_overrides_are_stream_neutral(self):
        """An override draws one stream step like any other decision, so
        adding overrides for category A never shifts B's decisions."""
        def decisions(categories):
            sim = Simulator()
            tracer = self.make(sim, sample_rate=0.5, seed=3,
                               categories=categories)
            out = []
            for index in range(400):
                category = "a" if index % 2 else "b"
                out.append((category, tracer.sample(category)))
            return [keep for cat, keep in out if cat == "b"]

        assert decisions({"a": 0.0}) == decisions({"a": 1.0})

    def test_override_decisions_are_seed_deterministic(self, sim):
        tracer = self.make(sim, sample_rate=0.5, seed=3,
                           categories={"x": 0.3})
        first = [tracer.sample("x") for _ in range(200)]
        tracer.clear()
        second = [tracer.sample("x") for _ in range(200)]
        assert first == second

    def test_span_suppression_honours_overrides(self, sim):
        tracer = self.make(sim, sample_rate=1.0, categories={"quiet": 0.0})
        for _ in range(20):
            with tracer.span("quiet", "op"):
                with tracer.span("child", "inner"):
                    pass
        assert tracer.spans == []
        with tracer.span("loud", "op"):
            pass
        assert len(tracer.spans) == 1


class TestSampleAt:
    def test_extremes(self):
        sampler = Sampler(0.5, seed=1)
        assert all(sampler.sample_at(1.0) for _ in range(100))
        assert not any(sampler.sample_at(0.0) for _ in range(100))

    def test_consumes_exactly_one_step(self):
        a = Sampler(0.5, seed=9)
        b = Sampler(0.5, seed=9)
        a.sample_at(0.123)
        b.sample()
        # both consumed one step: streams stay aligned
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]


class TestExportMeta:
    def test_full_trace_without_overrides_has_no_meta(self, sim):
        tracer = telemetry.configure(sim, kernel_detail=None)
        with tracer.span("cat", "op"):
            pass
        records = list(jsonl_records(tracer))
        assert all(record["type"] != "meta" for record in records)

    def test_overrides_appear_in_meta(self, sim):
        tracer = telemetry.configure(sim, kernel_detail=None,
                                     categories={"net.msg": 0.125})
        with tracer.span("cat", "op"):
            pass
        meta = next(record for record in jsonl_records(tracer)
                    if record["type"] == "meta")
        assert meta["overrides"] == {"net.msg": 0.125}
        assert meta["sampling_rate"] == 1.0
        json.dumps(meta)  # pipe/export-safe plain data

    def test_checksum_stable_for_same_seed(self):
        def checksum():
            sim = Simulator()
            tracer = telemetry.configure(
                sim, sample_rate=0.5, seed=4, kernel_detail=None,
                categories={"a": 0.2, "b": 0.9})
            for index in range(300):
                with tracer.span("a" if index % 3 else "b", f"op{index}"):
                    pass
            return trace_checksum(tracer)

        assert checksum() == checksum()

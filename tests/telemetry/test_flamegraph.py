"""Folded-stack export: span parent chains + kernel scheduling chains."""

import pytest

from repro.events import Simulator
from repro.telemetry import (
    EXTERNAL,
    Tracer,
    folded_stacks,
    install,
    kernel_folded,
    span_folded,
    write_folded,
)


def make_tracer():
    return Tracer(Simulator())


class TestSpanFolded:
    def test_parent_chain_and_self_time(self):
        tracer = make_tracer()
        sim = tracer.sim
        with tracer.span("app", "outer"):
            sim.run(until=0.2)
            with tracer.span("app", "inner"):
                sim.run(until=0.5)
            sim.run(until=0.6)
        lines = span_folded(tracer)
        assert sorted(lines) == [
            "app/outer 300000",             # 0.6 total - 0.3 child
            "app/outer;app/inner 300000",   # inner self time
        ]

    def test_orphan_parent_becomes_root(self):
        tracer = make_tracer()
        tracer.emit("net.hop", "hop", 0.0, 0.1, parent_id=999)
        assert span_folded(tracer) == ["net.hop/hop 100000"]

    def test_frames_are_sanitized(self):
        tracer = make_tracer()
        tracer.emit("net.msg", "a;b c", 0.0, 0.1)
        assert span_folded(tracer) == ["net.msg/a,b_c 100000"]

    def test_sibling_stacks_merge_weights(self):
        tracer = make_tracer()
        tracer.emit("work", "job", 0.0, 0.1)
        tracer.emit("work", "job", 0.5, 0.6)
        assert span_folded(tracer) == ["work/job 200000"]

    def test_wall_weight_mode(self):
        tracer = make_tracer()
        with tracer.span("c", "busy"):
            sum(range(50_000))
        (line,) = span_folded(tracer, weight="wall")
        frame, weight = line.rsplit(" ", 1)
        assert frame == "c/busy" and int(weight) > 0

    def test_unknown_weight_rejected(self):
        with pytest.raises(ValueError):
            span_folded(make_tracer(), weight="cpu")

    def test_empty_tracer_empty_output(self):
        assert span_folded(make_tracer()) == []


class TestKernelFolded:
    def test_dominant_scheduling_chain(self):
        sim = Simulator()
        tracer = install(sim)

        def leaf():
            pass

        def parent():
            sim.schedule(leaf, delay=1.0)

        sim.schedule(parent, delay=1.0)
        sim.run()
        lines = kernel_folded(tracer.kernel, weight="events")
        # Both events fired once; leaf's dominant predecessor is parent,
        # parent's is <external>.
        assert len(lines) == 2
        chains = {tuple(line.rsplit(" ", 1)[0].split(";")) for line in lines}
        leaf_chain = next(c for c in chains if c[-1].endswith(".leaf"))
        assert leaf_chain[0] == f"kernel/{EXTERNAL}"
        assert len(leaf_chain) == 3

    def test_self_rescheduling_cycle_is_cut(self):
        sim = Simulator()
        tracer = install(sim)

        def tick():
            if sim.now < 3.0:
                sim.schedule(tick, delay=1.0)

        sim.schedule(tick, delay=1.0)
        sim.run()
        lines = kernel_folded(tracer.kernel, weight="events")
        assert len(lines) == 1  # the cycle collapses to one chain
        assert lines[0].endswith(" 3")

    def test_unknown_weight_rejected(self):
        sim = Simulator()
        tracer = install(sim)
        with pytest.raises(ValueError):
            kernel_folded(tracer.kernel, weight="sim")


class TestCombined:
    def test_folded_stacks_merges_both_profiles(self, tmp_path):
        sim = Simulator()
        tracer = install(sim)

        def work():
            pass

        with tracer.span("app", "run"):
            sim.schedule(work, delay=1.0)
            sim.run()
        lines = folded_stacks(tracer, kernel_weight="events")
        assert any(line.startswith("app/run") for line in lines)
        assert any(line.startswith("kernel/") for line in lines)
        path = write_folded(tmp_path / "run.folded", lines)
        assert path.read_text().splitlines() == lines

    def test_without_kernel_hooks_spans_only(self):
        tracer = make_tracer()
        tracer.emit("app", "solo", 0.0, 1.0)
        assert folded_stacks(tracer) == ["app/solo 1000000"]

    def test_write_empty(self, tmp_path):
        path = write_folded(tmp_path / "empty.folded", [])
        assert path.read_text() == ""

    def test_deterministic_across_same_seed_runs(self):
        def run():
            sim = Simulator()
            tracer = install(sim)

            def work():
                pass

            with tracer.span("app", "run"):
                sim.schedule_many((1.0 + i, work) for i in range(20))
                sim.run()
            return folded_stacks(tracer, kernel_weight="events")

        assert run() == run()

"""PR-over-PR telemetry dashboard: folding, deltas, regressions, CLI."""

import json

from repro.events import Simulator
from repro.telemetry import Dashboard, Tracer, category_stats
from repro.telemetry.dashboard import main as dashboard_main


def bench_doc(disabled=0.2, sampled=6.0, off_eps=400_000.0, drops=0):
    return {
        "mode": "smoke",
        "unix_time": 1_700_000_000,
        "kernel": {
            "events_per_sec": {"off": off_eps, "sampled_1pct": off_eps * 0.94},
            "overhead_pct": {"disabled": disabled, "sampled_1pct": sampled},
        },
        "netsim": {"overhead_pct": 95.0, "overhead_pct_sampled": 4.0,
                   "messages_per_sec_off": 50_000.0},
        "categories": {"connector": {"spans": 10, "sim_time": 1.0,
                                     "wall_ms": 2.0}},
        "drops": drops,
        "span_buffer_bytes": 4096,
    }


class TestCategoryStats:
    def test_folds_ring_by_category(self):
        tracer = Tracer(Simulator())
        sim = tracer.sim
        with tracer.span("connector", "call"):
            sim.run(until=0.5)
        tracer.emit("net.msg", "flow", 0.0, 1.5)
        tracer.emit("net.msg", "flow2", 0.0, 0.5)
        stats = category_stats(tracer)
        assert stats["connector"]["spans"] == 1
        assert stats["connector"]["sim_time"] == 0.5
        assert stats["net.msg"]["spans"] == 2
        assert stats["net.msg"]["sim_time"] == 2.0

    def test_empty_tracer(self):
        assert category_stats(Tracer(Simulator())) == {}


class TestDashboard:
    def test_entry_from_bench_folds_the_document(self):
        entry = Dashboard.entry_from_bench(bench_doc(), "PR7")
        assert entry["label"] == "PR7"
        assert entry["kernel_overhead_pct"]["sampled_1pct"] == 6.0
        assert entry["netsim"]["overhead_pct_sampled"] == 4.0
        assert entry["categories"]["connector"]["spans"] == 10

    def test_round_trip_jsonl(self, tmp_path):
        dash = Dashboard()
        dash.add(Dashboard.entry_from_bench(bench_doc(), "PR2"))
        dash.add(Dashboard.entry_from_bench(bench_doc(sampled=5.0), "PR7"))
        path = dash.save(tmp_path / "hist.jsonl")
        loaded = Dashboard.load(path)
        assert [e["label"] for e in loaded.entries] == ["PR2", "PR7"]
        assert loaded.entries == dash.entries

    def test_load_missing_history_is_empty(self, tmp_path):
        assert Dashboard.load(tmp_path / "nope.jsonl").entries == []

    def test_deltas_between_consecutive_runs(self):
        dash = Dashboard([
            Dashboard.entry_from_bench(bench_doc(sampled=8.0), "PR2"),
            Dashboard.entry_from_bench(bench_doc(sampled=4.0), "PR7"),
        ])
        (pair,) = dash.deltas()
        assert pair["kernel_overhead_pct.sampled_1pct"] == -50.0

    def test_regressions_flag_bad_direction_only(self):
        dash = Dashboard([
            Dashboard.entry_from_bench(bench_doc(sampled=4.0,
                                                 off_eps=400_000.0), "PR2"),
            Dashboard.entry_from_bench(bench_doc(sampled=8.0,
                                                 off_eps=300_000.0), "PR7"),
        ])
        found = {(label, path) for label, path, _ in dash.regressions(10.0)}
        assert ("PR7", "kernel_overhead_pct.sampled_1pct") in found
        assert ("PR7", "kernel_events_per_sec.off") in found

    def test_improvements_are_not_regressions(self):
        dash = Dashboard([
            Dashboard.entry_from_bench(bench_doc(sampled=8.0), "PR2"),
            Dashboard.entry_from_bench(bench_doc(sampled=4.0), "PR7"),
        ])
        assert dash.regressions(10.0) == []

    def test_render_lists_every_run(self):
        dash = Dashboard([
            Dashboard.entry_from_bench(bench_doc(), "PR2"),
            Dashboard.entry_from_bench(bench_doc(sampled=5.5), "PR7"),
        ])
        text = dash.render()
        assert "PR2" in text and "PR7" in text
        assert "sampled 1% %" in text

    def test_render_empty(self):
        assert "no runs" in Dashboard().render()


class TestCli:
    def test_appends_entry_and_renders(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_telemetry.json"
        bench.write_text(json.dumps(bench_doc()))
        history = tmp_path / "hist.jsonl"
        code = dashboard_main([str(bench), "--history", str(history),
                               "--label", "PR7"])
        assert code == 0
        assert len(Dashboard.load(history).entries) == 1
        assert "PR7" in capsys.readouterr().out

    def test_fail_on_regression(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        Dashboard([Dashboard.entry_from_bench(bench_doc(sampled=4.0), "PR2")]
                  ).save(history)
        bench = tmp_path / "BENCH_telemetry.json"
        bench.write_text(json.dumps(bench_doc(sampled=9.0)))
        code = dashboard_main([str(bench), "--history", str(history),
                               "--label", "PR7", "--fail-on-regression"])
        assert code == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_render_only_without_bench(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        Dashboard([Dashboard.entry_from_bench(bench_doc(), "PR2")]
                  ).save(history)
        code = dashboard_main(["--history", str(history)])
        assert code == 0
        assert "PR2" in capsys.readouterr().out

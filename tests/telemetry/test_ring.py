"""SpanRing: fixed slots, oldest-first overwrite, lazy materialization."""

from repro.events import Simulator
from repro.telemetry import SpanRing, Tracer, chrome_trace, jsonl_records
from repro.telemetry.ring import DEFAULT_CAPACITY


def fill(ring, n, offset=0):
    for i in range(offset, offset + n):
        ring.append(i + 1, 0, "work", f"s{i}", float(i), float(i) + 0.5,
                    None, 0.0)


class TestRingBasics:
    def test_default_capacity(self):
        assert SpanRing().capacity == DEFAULT_CAPACITY

    def test_append_and_materialize_in_order(self):
        ring = SpanRing(capacity=8)
        fill(ring, 3)
        spans = ring.materialize()
        assert [s.name for s in spans] == ["s0", "s1", "s2"]
        assert [s.span_id for s in spans] == [1, 2, 3]
        assert spans[0].args == {}  # None slot materializes as empty dict
        assert ring.dropped == 0 and len(ring) == 3

    def test_args_dict_round_trips(self):
        ring = SpanRing(capacity=4)
        ring.append(1, 0, "c", "n", 0.0, 1.0, {"k": "v"}, 0.25)
        (span,) = ring.materialize()
        assert span.args == {"k": "v"}
        assert span.wall == 0.25

    def test_clear_resets_everything(self):
        ring = SpanRing(capacity=4)
        fill(ring, 6)
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0
        assert ring.materialize() == []
        fill(ring, 2)
        assert [s.name for s in ring] == ["s0", "s1"]

    def test_nbytes_reports_slot_storage(self):
        assert SpanRing(capacity=1024).nbytes > 0


class TestWraparound:
    def test_oldest_dropped_first(self):
        ring = SpanRing(capacity=4)
        fill(ring, 7)
        assert ring.dropped == 3
        assert len(ring) == 4
        # s0..s2 were overwritten; the newest four survive in order.
        assert [s.name for s in ring] == ["s3", "s4", "s5", "s6"]

    def test_exact_capacity_drops_nothing(self):
        ring = SpanRing(capacity=4)
        fill(ring, 4)
        assert ring.dropped == 0
        assert [s.name for s in ring] == ["s0", "s1", "s2", "s3"]

    def test_multiple_full_wraps(self):
        ring = SpanRing(capacity=3)
        fill(ring, 10)
        assert ring.dropped == 7
        assert [s.name for s in ring] == ["s7", "s8", "s9"]

    def test_tracer_exposes_drop_counter(self):
        tracer = Tracer(Simulator(), capacity=4)
        for i in range(9):
            with tracer.span("work", f"s{i}"):
                pass
        assert tracer.drops == 5
        assert len(tracer.spans) == 4

    def test_exports_surface_drops_in_meta(self):
        tracer = Tracer(Simulator(), capacity=2)
        for i in range(5):
            with tracer.span("work", f"s{i}"):
                pass
        records = list(jsonl_records(tracer))
        assert records[0]["type"] == "meta"
        assert records[0]["dropped_spans"] == 3
        assert records[0]["ring_capacity"] == 2
        doc = chrome_trace(tracer)
        assert doc["otherData"]["sampling"]["dropped_spans"] == 3


class TestExportEdgeCases:
    def test_export_on_empty_buffer(self):
        tracer = Tracer(Simulator())
        assert list(jsonl_records(tracer)) == []
        doc = chrome_trace(tracer)
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["process_name"]  # metadata only, no spans

    def test_export_after_clear_is_empty(self):
        tracer = Tracer(Simulator(), capacity=2)
        for i in range(5):
            with tracer.span("work", f"s{i}"):
                pass
        tracer.clear()
        assert list(jsonl_records(tracer)) == []

    def test_fully_dropped_buffer_still_reports_meta(self):
        # Every surviving slot overwritten many times over: the spans that
        # remain export fine and the meta record tells the whole story.
        tracer = Tracer(Simulator(), capacity=1)
        for i in range(100):
            with tracer.span("work", f"s{i}"):
                pass
        records = list(jsonl_records(tracer))
        assert records[0]["dropped_spans"] == 99
        assert [r["name"] for r in records if r["type"] == "span"] == ["s99"]

"""Deterministic per-region telemetry merge."""

from repro.events import Simulator
from repro import telemetry
from repro.telemetry.merge import (
    merge_records,
    merged_checksum,
    merged_trace_json,
    record_time,
    region_records,
)


def build_tracer(offset=0.0):
    sim = Simulator()
    tracer = telemetry.configure(sim, kernel_detail=None)
    sim.schedule(lambda: None, delay=offset + 1.0)
    with tracer.span("work", "op"):
        pass
    sim.run()
    tracer.instant("mark", "tick")
    tracer.count("ops", 3)
    return tracer


class TestRegionRecords:
    def test_tags_region_and_seq(self):
        records = region_records(build_tracer(), region=2)
        assert [record["seq"] for record in records] \
            == list(range(len(records)))
        assert all(record["region"] == 2 for record in records)

    def test_records_are_plain_jsonable_data(self):
        import json
        for record in region_records(build_tracer(), region=0):
            json.dumps(record)


class TestMergeOrder:
    def test_interleaves_by_time_then_region_then_seq(self):
        streams = {
            1: [{"type": "instant", "time": 0.5, "name": "b", "seq": 0},
                {"type": "instant", "time": 2.0, "name": "d", "seq": 1}],
            0: [{"type": "instant", "time": 0.5, "name": "a", "seq": 0},
                {"type": "instant", "time": 1.0, "name": "c", "seq": 1}],
        }
        merged = merge_records(streams)
        assert [record["name"] for record in merged] == ["a", "b", "c", "d"]

    def test_meta_first_counters_last(self):
        streams = {
            0: [{"type": "counter", "name": "n", "value": 1, "seq": 2},
                {"type": "meta", "sampling_rate": 0.5, "seq": 0},
                {"type": "span", "start": 0.0, "end": 1.0, "seq": 1}],
        }
        merged = merge_records(streams)
        assert [record["type"] for record in merged] \
            == ["meta", "span", "counter"]

    def test_same_region_ties_break_by_seq(self):
        streams = {
            0: [{"type": "instant", "time": 1.0, "name": "first", "seq": 0},
                {"type": "instant", "time": 1.0, "name": "second", "seq": 1}],
        }
        merged = merge_records(streams)
        assert [record["name"] for record in merged] == ["first", "second"]

    def test_record_time_shapes(self):
        assert record_time({"type": "span", "start": 2.5}) == 2.5
        assert record_time({"type": "audit", "time": 1.5}) == 1.5
        assert record_time({"type": "meta"}) == float("-inf")
        assert record_time({"type": "counter"}) == float("inf")


class TestChecksum:
    def test_same_streams_same_checksum(self):
        streams = {region: region_records(build_tracer(), region)
                   for region in (0, 1)}
        again = {region: region_records(build_tracer(), region)
                 for region in (0, 1)}
        assert merged_checksum(merge_records(streams)) \
            == merged_checksum(merge_records(again))

    def test_any_difference_changes_checksum(self):
        base = {0: region_records(build_tracer(), 0)}
        other = {0: region_records(build_tracer(offset=1.0), 0)}
        assert merged_checksum(merge_records(base)) \
            != merged_checksum(merge_records(other))

    def test_serialization_is_one_json_line_per_record(self):
        merged = merge_records({0: region_records(build_tracer(), 0)})
        text = merged_trace_json(merged)
        lines = text.strip().split("\n")
        assert len(lines) == len(merged)

"""Message lineage: flow spans across hops, drops, latency decomposition."""

import pytest

from repro.events import Simulator
from repro.netsim import Message, Network, star
from repro.telemetry import install


def collect(net, name):
    inbox = []
    net.node(name).bind_endpoint(
        "svc", lambda node, message: inbox.append(message))
    return inbox


def star_net(sim):
    return star(sim, leaves=3)


class TestDeliveredLineage:
    def test_two_hop_message_has_flow_and_hop_segments(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        inbox = collect(net, "leaf2")
        net.send(Message("leaf0", "leaf2", "svc", size=512))
        sim.run()
        assert len(inbox) == 1

        (flow,) = [s for s in tracer.spans if s.category == "net.msg"]
        hops = [s for s in tracer.spans if s.category == "net.hop"]
        assert flow.name == "leaf0->leaf2/svc"
        assert flow.args["outcome"] == "delivered"
        assert [h.name for h in hops] == ["leaf0->hub", "hub->leaf2"]
        # Lineage: every hop is a child of the end-to-end flow span.
        assert all(h.parent_id == flow.span_id for h in hops)
        assert all(h.args["msg_id"] == flow.args["msg_id"] for h in hops)

    def test_latency_decomposes_into_hop_segments(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        collect(net, "leaf1")
        net.send(Message("leaf0", "leaf1", "svc", size=1024))
        sim.run()
        (flow,) = [s for s in tracer.spans if s.category == "net.msg"]
        hops = [s for s in tracer.spans if s.category == "net.hop"]
        # Hops are contiguous: forwarding happens at each hop's arrival.
        assert sum(h.duration for h in hops) == pytest.approx(flow.duration)
        assert flow.args["latency"] == pytest.approx(flow.duration)
        for hop in hops:
            parts = (hop.args["queued"] + hop.args["transmission"]
                     + hop.args["propagation"])
            assert parts == pytest.approx(hop.duration)

    def test_queueing_behind_earlier_traffic_is_attributed(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        collect(net, "leaf1")
        # Two large messages in the same instant share one transmitter:
        # the second queues behind the first on leaf0->hub.
        net.send(Message("leaf0", "leaf1", "svc", size=100_000))
        net.send(Message("leaf0", "leaf1", "svc", size=100_000))
        sim.run()
        first, second = [s for s in tracer.spans
                         if s.category == "net.hop"
                         and s.name == "leaf0->hub"]
        assert first.args["queued"] == 0.0
        assert second.args["queued"] == pytest.approx(
            first.args["transmission"])

    def test_no_tracing_means_no_span_objects(self):
        sim = Simulator()
        net = star_net(sim)
        collect(net, "leaf1")
        message = Message("leaf0", "leaf1", "svc")
        net.send(message)
        sim.run()
        assert message.trace_span is None


class TestDroppedLineage:
    def drop_outcomes(self, tracer):
        return {s.args["outcome"] for s in tracer.spans
                if s.category == "net.msg"}

    def test_link_down_drop_closes_flow(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        net.link_between("hub", "leaf1").fail()
        net.invalidate_routes()
        net.send(Message("leaf0", "leaf1", "svc"))
        sim.run()
        assert self.drop_outcomes(tracer) == {"drop:no_route"}
        assert tracer.counters["net.dropped_no_route"] == 1.0

    def test_mid_flight_link_failure_traced_as_link_down(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        net.send(Message("leaf0", "leaf1", "svc"))
        # Fail the second link while the message rides the first hop;
        # the precomputed path is still followed, so the forward fails.
        sim.schedule(net.link_between("hub", "leaf1").fail, delay=0.0005)
        sim.run()
        assert self.drop_outcomes(tracer) == {"drop:link_down"}
        hops = [s.name for s in tracer.spans if s.category == "net.hop"]
        assert hops == ["leaf0->hub"]  # second hop never started

    def test_crashed_destination_traced_as_node_down(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        net.send(Message("leaf0", "leaf1", "svc"))
        # Crash the destination while the message is in flight: the route
        # stays valid, so the drop happens at arrival.
        sim.schedule(net.node("leaf1").crash, delay=0.0005)
        sim.run()
        assert self.drop_outcomes(tracer) == {"drop:node_down"}

    def test_unreachable_destination_traced_as_no_route(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = star_net(sim)
        net.node("leaf1").crash()
        net.invalidate_routes()
        net.send(Message("leaf0", "leaf1", "svc"))
        sim.run()
        assert self.drop_outcomes(tracer) == {"drop:no_route"}

    def test_lossy_link_drop(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        net = Network(sim, seed=7)
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b", loss=1.0)
        net.node("b").bind_endpoint("svc", lambda node, message: None)
        net.send(Message("a", "b", "svc"))
        sim.run()
        assert self.drop_outcomes(tracer) == {"drop:loss"}
        assert tracer.counters["net.dropped_loss"] == 1.0

    def test_disabled_tracer_leaves_delivery_untouched(self):
        sim = Simulator()
        tracer = install(sim, enabled=False, kernel_detail=None)
        net = star_net(sim)
        inbox = collect(net, "leaf1")
        net.send(Message("leaf0", "leaf1", "svc"))
        sim.run()
        assert len(inbox) == 1
        assert tracer.spans == []

"""Tracer core: spans, flows, counters, audit, the disabled fast path."""

import json

import pytest

from repro.events import Simulator
from repro.telemetry import (
    Tracer,
    chrome_trace,
    chrome_trace_json,
    jsonl_records,
    trace_checksum,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.tracer import NOOP_SPAN


def make_tracer(enabled=True):
    return Tracer(Simulator(), enabled=enabled)


class TestSpans:
    def test_span_records_simulated_interval(self):
        tracer = make_tracer()
        sim = tracer.sim
        with tracer.span("raml", "sweep", index=3):
            sim.run(until=0.5)
        (span,) = tracer.spans
        assert (span.category, span.name) == ("raml", "sweep")
        assert span.start == 0.0 and span.end == 0.5
        assert span.duration == 0.5
        assert span.args == {"index": 3}
        assert span.parent_id == 0

    def test_nested_spans_link_to_parent(self):
        tracer = make_tracer()
        with tracer.span("outer", "a") as outer:
            with tracer.span("inner", "b") as inner:
                pass
        assert inner.parent_id == outer.span_id
        # Inner closed first, so it is appended first.
        assert [s.name for s in tracer.spans] == ["b", "a"]

    def test_span_ids_are_sequential(self):
        tracer = make_tracer()
        with tracer.span("c", "one"):
            pass
        with tracer.span("c", "two"):
            pass
        assert [s.span_id for s in tracer.spans] == [1, 2]

    def test_exception_recorded_and_propagated(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("c", "boom"):
                raise ValueError("nope")
        (span,) = tracer.spans
        assert "ValueError" in span.args["error"]

    def test_wall_attribution_positive(self):
        tracer = make_tracer()
        with tracer.span("c", "busy"):
            sum(range(1000))
        assert tracer.spans[0].wall > 0.0


class TestFlows:
    def test_flow_span_outlives_events(self):
        tracer = make_tracer()
        sim = tracer.sim
        span = tracer.begin_flow("net.msg", "a->b", msg_id=7)
        sim.run(until=1.25)
        tracer.end_flow(span, outcome="delivered")
        (recorded,) = tracer.spans
        # Spans materialize lazily from the ring: same fields, new object.
        assert recorded.span_id == span.span_id
        assert (recorded.category, recorded.name) == ("net.msg", "a->b")
        assert recorded.duration == 1.25
        assert recorded.args == {"msg_id": 7, "outcome": "delivered"}

    def test_emit_uses_explicit_window_and_parent(self):
        tracer = make_tracer()
        parent = tracer.begin_flow("net.msg", "a->b")
        tracer.emit("net.hop", "a->hub", 0.1, 0.3, parent_id=parent.span_id)
        hop = tracer.spans[0]
        assert (hop.start, hop.end) == (0.1, 0.3)
        assert hop.parent_id == parent.span_id


class TestPointData:
    def test_instants_and_counters(self):
        tracer = make_tracer()
        tracer.sim.run(until=2.0)
        tracer.instant("qos", "violation:sla", contract="sla")
        tracer.count("qos.violations")
        tracer.count("qos.violations")
        tracer.count("bytes", 512.0)
        (instant,) = tracer.instants
        assert instant.time == 2.0
        assert tracer.counters == {"qos.violations": 2.0, "bytes": 512.0}

    def test_audit_records(self):
        tracer = make_tracer()
        tracer.record_audit("raml.decision", constraint="cpu", action="adapt")
        (record,) = list(tracer.audit)
        assert record.kind == "raml.decision"
        assert record.fields["action"] == "adapt"
        assert tracer.audit.kinds() == {"raml.decision": 1}
        assert len(tracer.audit.of_kind("raml.decision")) == 1


class TestDisabledPath:
    def test_disabled_records_nothing(self):
        tracer = make_tracer(enabled=False)
        with tracer.span("c", "n"):
            pass
        assert tracer.begin_flow("c", "n") is None
        tracer.emit("c", "n", 0.0, 1.0)
        tracer.instant("c", "n")
        tracer.count("n")
        assert tracer.record_audit("k") is None
        assert not tracer.spans and not tracer.instants
        assert not tracer.counters and len(tracer.audit) == 0

    def test_disabled_span_is_the_shared_noop_singleton(self):
        tracer = make_tracer(enabled=False)
        assert tracer.span("c", "a") is NOOP_SPAN
        assert tracer.span("c", "b") is NOOP_SPAN  # no allocation per call

    def test_clear_restarts_ids(self):
        tracer = make_tracer()
        with tracer.span("c", "n"):
            pass
        tracer.clear()
        with tracer.span("c", "n"):
            pass
        assert tracer.spans[0].span_id == 1


class TestExports:
    def populated(self):
        tracer = make_tracer()
        sim = tracer.sim
        with tracer.span("raml", "sweep"):
            sim.run(until=0.5)
        tracer.instant("qos", "violation:sla")
        tracer.count("qos.violations")
        tracer.record_audit("raml.decision", constraint="cpu")
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self.populated()
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["type"] for r in records] == [
            "span", "instant", "audit", "counter"]
        assert records[0]["cat"] == "raml"
        assert "wall" not in records[0]  # deterministic by default

    def test_jsonl_include_wall_opt_in(self):
        tracer = self.populated()
        span_record = next(iter(jsonl_records(tracer, include_wall=True)))
        assert "wall" in span_record

    def test_chrome_trace_structure(self, tmp_path):
        tracer = self.populated()
        doc = chrome_trace(tracer)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i", "C"}
        # Every track got a thread_name metadata record.
        named = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert named == {"raml", "qos", "audit", "counters"}
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 500_000.0
        audit = next(e for e in events if e["ph"] == "i"
                     and e["cat"].startswith("audit."))
        assert audit["s"] == "p"
        # The written file is valid JSON.
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        assert json.loads(path.read_text())["otherData"]["clock"] == "simulated"

    def test_checksum_is_stable_for_identical_content(self):
        first, second = self.populated(), self.populated()
        assert trace_checksum(first) == trace_checksum(second)
        second.count("extra")
        assert trace_checksum(first) != trace_checksum(second)

    def test_chrome_json_is_canonical(self):
        tracer = self.populated()
        assert chrome_trace_json(tracer) == chrome_trace_json(tracer)

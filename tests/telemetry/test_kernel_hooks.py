"""Kernel instrumentation: per-site stats, scheduling edges, timer ticks."""

import pytest

from repro.events import PeriodicTimer, Simulator
from repro.telemetry import EXTERNAL, install, site_name, uninstall
from repro.telemetry.hooks import KernelInstrumentation


def ping():
    pass


class TestSiteName:
    def test_function_uses_qualname(self):
        assert site_name(ping) == "ping"

    def test_periodic_timer_uses_its_label(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, ping, name="qos-monitor")
        assert site_name(timer._tick) == "qos-monitor"

    def test_periodic_timer_default_label_names_callback(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, ping)
        assert site_name(timer._tick) == "timer:ping"


class TestAggregation:
    def test_fire_schedule_cancel_counted_per_site(self):
        sim = Simulator()
        tracer = install(sim)
        sim.schedule(ping, delay=1.0)
        sim.schedule(ping, delay=2.0)
        doomed = sim.schedule(ping, delay=3.0)
        doomed.cancel()
        sim.run()
        stats = tracer.kernel.sites["ping"]
        assert stats.scheduled == 3
        assert stats.fired == 2
        assert stats.cancelled == 1
        assert stats.wall > 0.0
        assert tracer.kernel.events_seen == 2

    def test_scheduling_edges_attribute_scheduler_to_target(self):
        sim = Simulator()
        tracer = install(sim)

        def parent():
            sim.schedule(ping, delay=1.0)

        sim.schedule(parent, delay=1.0)
        sim.run()
        # Qualnames of nested functions carry the test scope; compare on
        # the leaf name.
        edges = {(src if src == EXTERNAL else src.rsplit(".", 1)[-1],
                  dst.rsplit(".", 1)[-1]): count
                 for src, dst, count in tracer.kernel.scheduling_profile()}
        assert edges == {(EXTERNAL, "parent"): 1, ("parent", "ping"): 1}

    def test_timer_ticks_counted_by_name(self):
        sim = Simulator()
        tracer = install(sim)
        timer = PeriodicTimer(sim, 1.0, ping, name="sampler")
        sim.run(until=3.5)
        timer.stop()
        assert tracer.kernel.timer_ticks["sampler"] == 3

    def test_hot_sites_ranked_by_wall(self):
        sim = Simulator()
        tracer = install(sim)

        def busy():
            sum(range(20_000))

        sim.schedule(busy, delay=1.0)
        sim.schedule(ping, delay=2.0)
        sim.run()
        names = [name for name, _ in tracer.kernel.hot_sites()]
        assert names[0].endswith("busy")

    def test_unknown_detail_rejected(self):
        with pytest.raises(ValueError):
            KernelInstrumentation(object(), detail="verbose")


class TestEventsDetail:
    def test_per_event_instants_with_scheduler_attribution(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail="events")

        def parent():
            sim.schedule(ping, delay=1.0)

        sim.schedule(parent, delay=1.0)
        sim.run()
        kernel = [i for i in tracer.instants if i.category == "kernel"]
        assert [i.name.rsplit(".", 1)[-1] for i in kernel] == ["parent", "ping"]
        assert kernel[0].args["by"] == EXTERNAL
        assert kernel[1].args["by"].rsplit(".", 1)[-1] == "parent"

    def test_cancelled_events_leave_no_pending_attribution(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail="events")
        sim.schedule(ping, delay=1.0).cancel()
        sim.run()
        assert tracer.kernel._scheduled_by == {}


class TestLifecycle:
    def test_install_wires_tracer_and_hooks(self):
        sim = Simulator()
        tracer = install(sim)
        assert sim.tracer is tracer
        assert sim.hooks is tracer.kernel

    def test_install_disabled_leaves_hot_loop_unhooked(self):
        sim = Simulator()
        tracer = install(sim, enabled=False)
        assert sim.tracer is tracer
        assert sim.hooks is None

    def test_disable_detaches_enable_reattaches(self):
        sim = Simulator()
        tracer = install(sim)
        tracer.disable()
        assert sim.hooks is None
        sim.schedule(ping, delay=1.0)
        sim.run()
        assert tracer.kernel.events_seen == 0
        tracer.enable()
        assert sim.hooks is tracer.kernel
        sim.schedule(ping, delay=1.0)
        sim.run()
        assert tracer.kernel.events_seen == 1

    def test_uninstall_removes_everything(self):
        sim = Simulator()
        install(sim)
        uninstall(sim)
        assert sim.tracer is None
        assert sim.hooks is None

    def test_deterministic_results_with_and_without_hooks(self):
        def drive(with_hooks):
            sim = Simulator()
            if with_hooks:
                install(sim)
            order = []
            sim.schedule_many(
                (1.0, order.append, (i,)) for i in range(50))
            sim.schedule(order.append, "early", delay=0.5)
            sim.run()
            return order, sim.now

        assert drive(False) == drive(True)

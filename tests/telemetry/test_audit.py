"""Decision-audit wiring across subsystems.

Each meta-level mechanism — reconfiguration transactions, control loops,
adaptation policies, QoS monitors, introspection queries — must leave an
audit trail when (and only when) a tracer is installed.
"""

from repro.adaptation import AdaptationManager, AdaptationPolicy
from repro.control import ControlLoop, PidController
from repro.core import IntrospectionHub
from repro.events import Simulator
from repro.kernel import Assembly
from repro.netsim import star
from repro.qos import MetricRegistry, QosContract, QosMonitor
from repro.reconfig import (
    AddComponent,
    ReconfigurationTransaction,
    RemoveBinding,
)
from repro.telemetry import install

from tests.helpers import CounterComponent, counter_interface


def kinds(tracer):
    return tracer.audit.kinds()


class TestControlLoop:
    def test_actuations_audited_with_inputs(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        plant = {"value": 0.0}
        loop = ControlLoop(
            sim,
            PidController(kp=0.5, setpoint=10.0),
            sensor=lambda: plant["value"],
            actuator=lambda output: plant.__setitem__(
                "value", plant["value"] + 0.5 * output),
            period=1.0,
            name="cpu-loop",
        ).start()
        sim.run(until=3.5)
        loop.stop()
        records = tracer.audit.of_kind("control.actuate")
        assert len(records) == 3
        first = records[0]
        assert first.fields["loop"] == "cpu-loop"
        assert first.fields["setpoint"] == 10.0
        assert first.fields["measurement"] == 0.0
        assert first.fields["output"] == 5.0  # kp * error


class TestAdaptation:
    def test_policy_firings_audited_with_context(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        manager = AdaptationManager(sim)
        manager.add_probe("load", lambda: 0.9)
        manager.add_policy(AdaptationPolicy(
            "shed-load",
            condition=lambda ctx: ctx["load"] > 0.8,
            actions=[lambda ctx: None],
            priority=5,
        ))
        assert manager.evaluate() == ["shed-load"]
        (record,) = tracer.audit.of_kind("adaptation.fire")
        assert record.fields["policy"] == "shed-load"
        assert record.fields["priority"] == 5
        assert record.fields["context"] == {"load": 0.9}


class TestQosMonitor:
    def make_monitor(self, sim):
        registry = MetricRegistry(window=1.0)
        monitor = QosMonitor(sim, registry, period=1.0)
        monitor.add_contract(QosContract("sla").require_max("latency", 0.1))
        return registry, monitor

    def test_violation_and_restoration_audited(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        registry, monitor = self.make_monitor(sim)
        registry.record("latency", 0.5, now=0.0)
        monitor.check_now()           # violation
        # The bad sample ages out of the 1s window before the next check.
        registry.record("latency", 0.01, now=5.0)
        sim._now = 5.0
        monitor.check_now()           # restored
        audit = kinds(tracer)
        assert audit["qos.violation"] == 2
        violation, restored = tracer.audit.of_kind("qos.violation")
        assert violation.fields["transition"] == "violation"
        assert violation.fields["contract"] == "sla"
        assert violation.fields["violations"]  # obligation descriptions
        assert restored.fields["transition"] == "restored"
        assert tracer.counters == {"qos.violations": 1.0,
                                   "qos.restoreds": 1.0}

    def test_compliant_checks_leave_no_audit(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        registry, monitor = self.make_monitor(sim)
        registry.record("latency", 0.01, now=0.0)
        monitor.check_now()
        assert len(tracer.audit) == 0


class TestReconfiguration:
    def wired_assembly(self, sim):
        assembly = Assembly(star(sim, leaves=3))
        server = CounterComponent("server")
        server.provide("svc", counter_interface())
        assembly.deploy(server, "leaf0")
        return assembly

    def test_transaction_phases_audited_and_span_emitted(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        assembly = self.wired_assembly(sim)
        extra = CounterComponent("extra")
        extra.provide("svc", counter_interface())
        txn = ReconfigurationTransaction(assembly, name="grow").add(
            AddComponent(extra, "leaf1"))
        report = txn.execute()
        assert report.state.value == "committed"
        phases = [r.fields["phase"]
                  for r in tracer.audit.of_kind("reconfig.phase")]
        assert phases == ["quiescence", "change", "commit"]
        quiescence = tracer.audit.of_kind("reconfig.phase")[0]
        assert quiescence.fields["outcome"] == "reached"
        assert all(r.fields["txn"] == "grow"
                   for r in tracer.audit.of_kind("reconfig.phase"))
        (span,) = [s for s in tracer.spans if s.category == "reconfig"]
        assert span.name == "grow"

    def test_failed_transaction_audits_rollback(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        assembly = self.wired_assembly(sim)
        client = CounterComponent("client")
        client.provide("svc", counter_interface())
        client.require("peer", counter_interface())
        assembly.deploy(client, "leaf1")
        assembly.connect("client", "peer", target_component="server")
        # Removing the only binding of a required port fails consistency
        # validation at apply time, forcing a rollback.
        txn = ReconfigurationTransaction(assembly, name="break").add(
            RemoveBinding("client", "peer"))
        try:
            txn.execute()
        except Exception:
            pass
        phases = [r.fields["phase"]
                  for r in tracer.audit.of_kind("reconfig.phase")]
        assert "rollback" in phases
        rollback = next(r for r in tracer.audit.of_kind("reconfig.phase")
                        if r.fields["phase"] == "rollback")
        assert rollback.fields["error"]


class TestIntrospection:
    def test_queries_audited_with_results(self):
        sim = Simulator()
        tracer = install(sim, kernel_detail=None)
        hub = IntrospectionHub(sim)
        hub.recent()
        hub.count("error")
        hub.error_ratio()
        records = tracer.audit.of_kind("raml.introspect")
        assert [r.fields["query"] for r in records] == [
            "recent", "count", "error_ratio"]
        assert records[1].fields["kind"] == "error"
        assert records[1].fields["result"] == 0

    def test_queries_silent_without_tracer(self):
        hub = IntrospectionHub(Simulator())
        assert hub.recent() == []
        assert hub.count("error") == 0

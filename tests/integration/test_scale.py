"""Scalability sanity: the platform stays correct and fast at size.

Builds an assembly of 120 components wired into service chains behind
load-balancer connectors, puts it under RAML, performs a burst of
reconfigurations, and checks correctness plus loose wall-clock bounds
(generous enough for slow CI, tight enough to catch quadratic blowups).
"""

import time

import pytest

from repro import Simulator
from repro.core import Raml, structural_consistency
from repro.kernel import Assembly
from repro.netsim import full_mesh
from repro.connectors import LoadBalancerConnector
from repro.reconfig import (
    MigrateComponent,
    ReconfigurationTransaction,
    ReplaceComponent,
    check_assembly,
)

from tests.helpers import CounterComponent, counter_interface

NODES = 8
SERVICES = 20
WORKERS_PER_SERVICE = 5  # 120 components + 20 clients


def fresh(name, require_peer=False):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    if require_peer:
        component.require("peer", counter_interface())
    return component


@pytest.fixture(scope="module")
def big_assembly():
    sim = Simulator()
    assembly = Assembly(full_mesh(sim, size=NODES))
    for service in range(SERVICES):
        connector = LoadBalancerConnector(f"lb{service}", counter_interface())
        assembly.add_connector(connector)
        for worker_index in range(WORKERS_PER_SERVICE):
            worker = fresh(f"s{service}w{worker_index}")
            assembly.deploy(
                worker, f"n{(service + worker_index) % NODES}"
            )
            connector.attach("worker", worker.provided_port("svc"))
        client = fresh(f"s{service}client", require_peer=True)
        assembly.deploy(client, f"n{service % NODES}")
        assembly.connect(f"s{service}client", "peer",
                         target=connector.endpoint("client"))
    return sim, assembly


def test_scale_build_is_consistent(big_assembly):
    _sim, assembly = big_assembly
    assert len(assembly.registry) == SERVICES * (WORKERS_PER_SERVICE + 1)
    start = time.perf_counter()
    report = check_assembly(assembly)
    elapsed = time.perf_counter() - start
    assert report.consistent
    assert elapsed < 1.0


def test_scale_traffic_round_robins_everywhere(big_assembly):
    _sim, assembly = big_assembly
    for service in range(SERVICES):
        client = assembly.component(f"s{service}client")
        for _ in range(WORKERS_PER_SERVICE):
            client.required_port("peer").call("increment", 1)
    for service in range(SERVICES):
        for worker_index in range(WORKERS_PER_SERVICE):
            worker = assembly.component(f"s{service}w{worker_index}")
            assert worker.state["total"] >= 1


def test_scale_raml_sweep_cost(big_assembly):
    _sim, assembly = big_assembly
    raml = Raml(assembly).instrument()
    raml.add_constraint(structural_consistency())
    start = time.perf_counter()
    for _ in range(5):
        record = raml.sweep()
    elapsed = (time.perf_counter() - start) / 5
    assert record.healthy
    assert elapsed < 0.5, f"sweep took {elapsed:.3f}s on 140 components"


def test_scale_reconfiguration_burst(big_assembly):
    sim, assembly = big_assembly
    start = time.perf_counter()
    for service in range(0, SERVICES, 2):
        replacement = fresh(f"s{service}w0-v2")
        ReconfigurationTransaction(assembly).add(
            ReplaceComponent(f"s{service}w0", replacement)
        ).execute()
        ReconfigurationTransaction(assembly).add(
            MigrateComponent(f"s{service}w1",
                             f"n{(service + 5) % NODES}")
        ).execute()
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"20 transactions took {elapsed:.1f}s"
    assert check_assembly(assembly).consistent
    # Replaced services still serve through their connectors.
    client = assembly.component("s0client")
    before = sum(
        assembly.component(name).state["total"]
        for name in assembly.registry.names() if name.startswith("s0w")
    )
    client.required_port("peer").call("increment", 1)

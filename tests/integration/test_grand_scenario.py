"""The grand scenario: every layer of the platform in one run.

An ADL-defined telecom video service runs over the ORB on a datacenter
topology while the environment fluctuates and nodes fail.  RAML holds it
together: composition filters throttle spam, the adaptation manager
degrades the codec under congestion, the reconfiguration engine migrates
off hot nodes, and the failover connector masks a crash.  Assertions
check the end state of every subsystem.
"""

import pytest

from repro import Simulator, parse_adl
from repro.adl import build_architecture
from repro.core import (
    Raml,
    Response,
    all_nodes_up,
    composition_correctness,
    structural_consistency,
)
from repro.events import PeriodicTimer
from repro.filters import FilterSet, StopFilter, match
from repro.netsim import FailureInjector, least_loaded, star
from repro.strategy import Strategy, StrategySlot
from repro.adaptation import AdaptationPolicy, switch_strategy
from repro.workloads import clamped, sinusoidal

ARCHITECTURE = """
interface Media version 1.0 {
  operation render(frame)
}

component Gateway {
  requires media : Media 1.0
}

component Renderer {
  provides svc : Media 1.0
  behaviour {
    init ready
    ready -> ready : render
    final ready
  }
}

connector Replicas kind failover interface Media 1.0

architecture VideoService {
  instance gateway : Gateway on leaf0
  instance renderer1 : Renderer on leaf1
  instance renderer2 : Renderer on leaf2
  use replicas : Replicas
  bind gateway.media -> replicas.client
  attach renderer1.svc -> replicas.replica
  attach renderer2.svc -> replicas.replica
}
"""


class RendererImpl:
    def __init__(self, codec):
        self.codec = codec
        self.rendered = 0

    def render(self, frame):
        self.rendered += 1
        return f"{self.codec.current_name}:{frame}"


@pytest.fixture
def world():
    sim = Simulator()
    network = star(sim, leaves=4)
    codec = StrategySlot("codec", [
        Strategy("hq", lambda: "hq", traits={"bandwidth": 6.0}),
        Strategy("lq", lambda: "lq", traits={"bandwidth": 1.0}),
    ], initial="hq")
    impls = {}

    def renderer_factory(name):
        impl = RendererImpl(codec)
        impls[name] = impl
        return impl

    assembly = build_architecture(
        parse_adl(ARCHITECTURE), "VideoService", network,
        {"Gateway": lambda name: object(), "Renderer": renderer_factory},
    )
    return sim, network, assembly, codec, impls


def test_grand_scenario(world):
    sim, network, assembly, codec, impls = world
    gateway = assembly.component("gateway")
    connector = assembly.connectors["replicas"]

    # --- RAML with structural + behavioural constraints -----------------
    raml = Raml(assembly, period=0.5).instrument()
    raml.add_constraint(structural_consistency())
    raml.add_constraint(composition_correctness())

    def heal(raml_, violations):
        for component in list(assembly.registry):
            node = network.nodes.get(component.node_name or "")
            if node is not None and not node.up:
                target = least_loaded(
                    n for n in network.live_nodes()
                    if not assembly.registry.on_node(n.name)
                )
                raml_.intercessor.migrate(component.name, target.name)
        connector.reset()

    # escalate_after=2 leaves a one-sweep outage window during which the
    # failover connector must carry the traffic on the standby replica.
    raml.add_constraint(all_nodes_up(),
                        Response(reconfigure=heal, escalate_after=2))

    # --- adaptation: degrade codec when bandwidth sags -------------------
    bandwidth = clamped(sinusoidal(base=5.5, amplitude=3.0, period=20.0),
                        0.5, 10.0)
    raml.adaptation.add_probe("bandwidth", lambda: bandwidth(sim.now))
    raml.adaptation.add_policy(AdaptationPolicy(
        "degrade", condition=lambda ctx: ctx["bandwidth"] < 6.0,
        actions=[switch_strategy(codec, "lq", "congestion")], cooldown=1.0))
    raml.adaptation.add_policy(AdaptationPolicy(
        "restore", condition=lambda ctx: ctx["bandwidth"] >= 6.0,
        actions=[switch_strategy(codec, "hq", "recovered")], cooldown=1.0))
    raml.adaptation.start()
    raml.start()

    # --- crosscutting filter: drop spam frames ---------------------------
    spam_filter = FilterSet("anti-spam", [
        StopFilter("drop-spam",
                   match("render", when=lambda inv: inv.args[0] == "spam"),
                   result="dropped"),
    ])
    for name in ("renderer1", "renderer2"):
        spam_filter_instance = FilterSet("anti-spam", [
            StopFilter("drop-spam",
                       match("render",
                             when=lambda inv: inv.args[0] == "spam"),
                       result="dropped"),
        ])
        spam_filter_instance.attach_to(
            assembly.component(name).provided_port("svc"))

    # --- traffic ---------------------------------------------------------
    results = {"ok": 0, "dropped": 0, "failed": 0, "sent": 0}

    def call():
        index = results["sent"]
        results["sent"] += 1
        frame = "spam" if index % 10 == 9 else f"f{index}"
        try:
            outcome = gateway.required_port("media").call("render", frame)
        except Exception:  # noqa: BLE001
            results["failed"] += 1
            return
        if outcome == "dropped":
            results["dropped"] += 1
        else:
            results["ok"] += 1

    traffic = PeriodicTimer(sim, 0.02, call)

    # --- failures ---------------------------------------------------------
    injector = FailureInjector(network, seed=5)
    injector.crash_node("leaf1", at=6.0)

    sim.run(until=20.0)
    traffic.stop()
    raml.stop()
    raml.adaptation.stop()

    # --- the whole platform did its job -----------------------------------
    # Failover + healing masked the crash almost entirely.
    assert results["failed"] <= 2
    assert results["ok"] > 700
    # The spam filter dropped exactly the spam frames.
    assert results["dropped"] > 50
    # Adaptation switched codecs with the sinusoidal bandwidth.
    assert codec.switch_count >= 2
    renders = [impl.rendered for impl in impls.values()]
    assert all(count > 0 for count in renders)
    # The crashed node hosts nothing anymore; everything is on live nodes.
    for component in assembly.registry:
        assert network.node(component.node_name).up
    # Meta-level: healed exactly once, constraints clean at the end.
    health = raml.health()
    assert health["reconfigurations"] >= 1
    assert health["healthy"]
    # Behaviour conformance held throughout (renderers follow their LTS).
    assert raml.conformance.violations == []

"""User preferences & profiles: premium sessions keep quality longer.

The paper's motivating sentence: services "reconfigured automatically
according to user's mobility, preferences, profiles and equipments".
Here an adaptation policy degrades *standard*-profile sessions first
when bandwidth sags, protecting *premium* sessions — per-profile QoS
differentiation built from the platform's strategy + adaptation pieces.
"""

import pytest

from repro import Simulator
from repro.adaptation import AdaptationManager, AdaptationPolicy
from repro.strategy import Strategy, StrategySlot
from repro.workloads import TelecomWorkload, TelecomWorkloadConfig, step


HQ_COST = 4.0
LQ_COST = 1.0


def make_codec(profile):
    return StrategySlot(f"codec-{profile}", [
        Strategy("hq", lambda: HQ_COST),
        Strategy("lq", lambda: LQ_COST),
    ], initial="hq")


def run_scenario(protect_premium: bool):
    sim = Simulator()
    # Capacity halves at t=20 ("cell congestion").
    capacity = step(40.0, 12.0, at=20.0)
    codecs = {"standard": make_codec("standard"),
              "premium": make_codec("premium")}

    quality = {"standard": [], "premium": []}
    delivered = {"standard": 0, "premium": 0}
    dropped = {"standard": 0, "premium": 0}
    active_by_profile = {"standard": 0, "premium": 0}

    def demand():
        return sum(active_by_profile[p] * codecs[p].current()
                   for p in codecs)

    manager = AdaptationManager(sim, period=0.5)
    manager.add_probe("capacity", lambda: capacity(sim.now))
    manager.add_probe("demand", demand)

    def degrade(profiles):
        def action(context):
            for profile in profiles:
                if codecs[profile].current_name != "lq":
                    codecs[profile].use("lq", reason="congestion")
        return action

    def restore_all(context):
        for codec in codecs.values():
            if codec.current_name != "hq":
                codec.use("hq", reason="recovered")

    if protect_premium:
        # Two-stage degradation: standard first, premium only if still
        # over capacity afterwards.
        manager.add_policy(AdaptationPolicy(
            "degrade-standard",
            condition=lambda ctx: ctx["demand"] > ctx["capacity"],
            actions=[degrade(["standard"])], priority=10, cooldown=1.0))
        manager.add_policy(AdaptationPolicy(
            "degrade-premium",
            condition=lambda ctx: (
                ctx["demand"] > ctx["capacity"]
                and codecs["standard"].current_name == "lq"),
            actions=[degrade(["premium"])], priority=5, cooldown=1.0,
            arm_after=2))
    else:
        manager.add_policy(AdaptationPolicy(
            "degrade-everyone",
            condition=lambda ctx: ctx["demand"] > ctx["capacity"],
            actions=[degrade(["standard", "premium"])], cooldown=1.0))
    manager.add_policy(AdaptationPolicy(
        "restore",
        condition=lambda ctx: ctx["demand"] <= ctx["capacity"] * 0.5,
        actions=[restore_all], cooldown=2.0, priority=1))
    manager.start()

    def send_frame(session, on_delivered):
        codec = codecs[session.profile]
        if demand() <= capacity(sim.now):
            quality[session.profile].append(
                1.0 if codec.current_name == "hq" else 0.4)
            delivered[session.profile] += 1
            on_delivered()
        else:
            dropped[session.profile] += 1

    workload = TelecomWorkload(
        sim, ["cell0"], send_frame,
        TelecomWorkloadConfig(arrival_rate=0.5, mean_duration=25.0,
                              frame_rate=8.0,
                              profiles=("standard", "premium"), seed=3),
    )

    # Track active sessions per profile for the demand model.
    original_arrive = workload._arrive

    def tracked_arrive():
        original_arrive()
        counts = {"standard": 0, "premium": 0}
        for session in workload.active_sessions:
            counts[session.profile] += 1
        active_by_profile.update(counts)

    workload._arrive = tracked_arrive
    workload.start(duration=40.0)
    sim.run(until=60.0)
    manager.stop()

    def mean_quality(profile):
        values = quality[profile]
        return sum(values) / len(values) if values else 0.0

    return {
        "premium_quality": mean_quality("premium"),
        "standard_quality": mean_quality("standard"),
        "premium_drop": dropped["premium"]
        / max(1, dropped["premium"] + delivered["premium"]),
    }


def test_premium_profiles_keep_quality_when_protected():
    protected = run_scenario(protect_premium=True)
    flat = run_scenario(protect_premium=False)
    # With profile-aware adaptation, premium users see higher quality
    # than standard users during the congestion episode…
    assert protected["premium_quality"] > protected["standard_quality"]
    # …and higher than they would under profile-blind degradation.
    assert protected["premium_quality"] > flat["premium_quality"]


def test_flat_policy_treats_profiles_equally():
    flat = run_scenario(protect_premium=False)
    assert flat["premium_quality"] == pytest.approx(
        flat["standard_quality"], abs=0.15)

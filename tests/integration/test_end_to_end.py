"""Integration tests spanning the whole stack."""

import pytest

from repro import (
    Assembly,
    Component,
    Interface,
    Operation,
    Raml,
    ReconfigurationTransaction,
    ReplaceComponent,
    Response,
    RpcConnector,
    Simulator,
    parse_adl,
    star,
)
from repro.adl import build_architecture
from repro.core import custom, node_load_below
from repro.events import PeriodicTimer
from repro.middleware import Orb, RemoteProxy
from repro.netsim import FailureInjector, full_mesh
from repro.qos import QosContract, Statistic
from repro.reconfig import MigrationPlanner, TransactionState
from repro.workloads import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    binding_transport,
    proxy_transport,
)

from tests.helpers import CounterComponent, counter_interface


def fresh_counter(name, require_peer=False):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    if require_peer:
        component.require("peer", counter_interface())
    return component


class TestAdlToRunningSystem:
    SOURCE = """
    interface Counter version 1.0 {
      operation increment(amount?)
      operation total()
    }
    component Client { requires peer : Counter 1.0 }
    component Server { provides svc : Counter 1.0 }
    connector Front kind rpc interface Counter 1.0
    architecture App {
      instance client : Client on leaf0
      instance server : Server on leaf1
      use front : Front
      bind client.peer -> front.client
      attach server.svc -> front.worker
    }
    """

    def test_adl_system_survives_hot_swap_under_traffic(self):
        # Fix the attach role for rpc (worker -> server).
        source = self.SOURCE.replace("front.worker", "front.server")

        impls = []

        class ServerImpl:
            def __init__(self):
                self.value = 0
                impls.append(self)

            def increment(self, amount=1):
                self.value += amount
                return self.value

            def total(self):
                return self.value

        sim = Simulator()
        network = star(sim, leaves=2)
        assembly = build_architecture(
            parse_adl(source), "App", network,
            {"Client": lambda name: object(),
             "Server": lambda name: ServerImpl()},
        )
        client = assembly.component("client")
        generator = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "increment", make_args=lambda i: (1,), rate=200.0,
        )
        generator.start(duration=1.0)

        replacement = fresh_counter("server-v2")
        done = []
        sim.at(lambda: ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", replacement)
        ).execute_async(on_done=done.append), when=0.5)
        sim.run()
        assert done[0].state is TransactionState.COMMITTED
        # Conservation: every issued call reached exactly one server —
        # the old implementation (external state) plus the replacement
        # account for all of them with no loss or duplication.
        assert generator.stats.succeeded == generator.stats.issued
        served_by_old = impls[0].value
        served_by_new = replacement.state["total"]
        assert served_by_old + served_by_new == generator.stats.issued
        assert served_by_new > 0  # the swap really happened under load


class TestRamlQosClosedLoop:
    def test_qos_violation_triggers_adaptation_which_restores_compliance(self):
        sim = Simulator()
        assembly = Assembly(star(sim, leaves=2))
        client = fresh_counter("client", require_peer=True)
        assembly.deploy(client, "leaf0")
        server = assembly.deploy(fresh_counter("server"), "leaf1")
        assembly.connect("client", "peer", target_component="server")

        raml = Raml(assembly, period=0.2, metric_window=1.0).instrument()
        # Simulated latency metric: high while "congested" flag is set.
        congested = {"on": False}

        def sample_latency():
            raml.record_metric("latency", 0.5 if congested["on"] else 0.01)

        PeriodicTimer(sim, 0.05, sample_latency)

        contract = QosContract("sla").require_max("latency", 0.1,
                                                  Statistic.P95)
        raml.monitor.add_contract(contract)

        adaptations = []

        def adapt(raml_, violations):
            congested["on"] = False  # the adaptation fixes the congestion
            raml_.metrics.series("latency").reset()
            adaptations.append(sim.now)

        def latency_bad(view):
            if "latency" not in view.metrics:
                return []
            series = view.metrics.series("latency")
            if not series.empty and series.percentile(95) > 0.1:
                return ["latency p95 over contract"]
            return []

        raml.add_constraint(custom("latency-sla", latency_bad),
                            Response(adapt=adapt, escalate_after=99))
        raml.start()
        sim.at(lambda: congested.__setitem__("on", True), when=1.0)
        sim.run(until=4.0)
        raml.stop()
        assert adaptations, "adaptation must fire"
        assert adaptations[0] >= 1.0
        # Compliance restored by the end.
        assert raml.history[-1].healthy
        # The sweep repaired the congestion before the (same-period)
        # monitor could observe two consecutive bad checks, so the
        # contract never left compliance from the monitor's viewpoint.
        assert raml.monitor.stats.compliance_ratio >= 0.9


class TestMiddlewareMigration:
    def test_orb_traffic_follows_migrating_component(self):
        sim = Simulator()
        network = full_mesh(sim, size=3)
        assembly = Assembly(network)
        server = assembly.deploy(fresh_counter("server"), "n1")
        orbs = {name: Orb(network, name) for name in ("n0", "n1", "n2")}
        orbs["n1"].register("counter", server.provided_port("svc"))
        proxy = RemoteProxy(orbs["n0"], "n1", "counter", counter_interface(),
                            timeout=2.0)

        generator = ClosedLoopGenerator(
            sim, proxy_transport(proxy), "increment",
            make_args=lambda i: (1,), concurrency=2, think_time=0.01,
        )
        generator.start()

        def migrate():
            raml = Raml(assembly)
            raml.intercessor.migrate("server", "n2")
            orbs["n1"].unregister("counter")
            orbs["n2"].register("counter", server.provided_port("svc"))
            proxy.rebind("n2")

        sim.at(migrate, when=0.5)
        sim.run(until=1.0)
        generator.stop()
        sim.run(until=2.0)
        assert server.node_name == "n2"
        # A couple of in-flight requests may be lost at the instant of
        # migration (the old exporter vanished) but traffic continues.
        assert generator.stats.succeeded > 50
        assert generator.stats.failed <= 4
        assert server.state["total"] == generator.stats.succeeded


class TestRamlMigratesUnderLoadConstraint:
    def test_hot_node_drained_by_meta_level(self):
        sim = Simulator()
        assembly = Assembly(full_mesh(sim, size=3))
        worker = assembly.deploy(fresh_counter("worker"), "n0")
        raml = Raml(assembly, period=0.5).instrument()
        planner = MigrationPlanner(assembly, high_watermark=0.7,
                                   low_watermark=0.5)

        def rebalance(raml_, violations):
            for move in planner.plan_load_levelling():
                raml_.intercessor.migrate(move.component, move.target)

        raml.add_constraint(node_load_below(0.7),
                            Response(reconfigure=rebalance, escalate_after=2))
        raml.start()
        sim.at(assembly.network.node("n0").set_background_load, 0.9, when=1.0)
        sim.run(until=5.0)
        raml.stop()
        assert worker.node_name != "n0"
        assert raml.health()["reconfigurations"] == 1


class TestFailureDuringReconfiguration:
    def test_transaction_rolls_back_when_target_node_dies_mid_flight(self):
        sim = Simulator()
        assembly = Assembly(full_mesh(sim, size=3))
        assembly.deploy(fresh_counter("server"), "n0")
        injector = FailureInjector(assembly.network)

        from repro.reconfig import MigrateComponent

        results = []

        def attempt():
            txn = ReconfigurationTransaction(assembly).add(
                MigrateComponent("server", "n2")
            )
            try:
                txn.execute()
                results.append("committed")
            except Exception:  # noqa: BLE001
                results.append(txn.report.state.value)

        # Node n2 dies before the transaction starts.
        injector.crash_node("n2", at=0.5)
        sim.at(attempt, when=1.0)
        sim.run()
        assert results == ["failed"]
        assert assembly.component("server").node_name == "n0"
        assert assembly.component("server").lifecycle.can_serve


class TestConnectorSwapUnderTraffic:
    def test_rpc_swapped_for_failover_without_losing_calls(self):
        from repro.connectors import FailoverConnector
        from repro.reconfig import SwapConnector

        sim = Simulator()
        assembly = Assembly(star(sim, leaves=3))
        client = fresh_counter("client", require_peer=True)
        assembly.deploy(client, "leaf0")
        server = assembly.deploy(fresh_counter("server"), "leaf1")
        rpc = RpcConnector("front", counter_interface())
        rpc.attach("server", server.provided_port("svc"))
        assembly.add_connector(rpc)
        assembly.connect("client", "peer", target=rpc.endpoint("client"))

        generator = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "increment", make_args=lambda i: (1,), rate=100.0,
        )
        generator.start(duration=1.0)

        def swap():
            failover = FailoverConnector("front-v2", counter_interface())
            txn = ReconfigurationTransaction(assembly).add(
                SwapConnector("front", failover,
                              role_mapping={"client": "client",
                                            "server": "replica"})
            )
            txn.execute()

        sim.at(swap, when=0.5)
        sim.run()
        assert "front-v2" in assembly.connectors
        assert "front" not in assembly.connectors
        assert generator.stats.succeeded == generator.stats.issued
        assert server.state["total"] == generator.stats.issued

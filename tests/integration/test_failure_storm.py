"""Failure-storm survival: RAML keeps the application placed on live
nodes through a randomized crash/recovery schedule."""

import pytest

from repro import Simulator
from repro.core import Raml, Response, all_nodes_up
from repro.kernel import Assembly
from repro.netsim import FailureInjector, full_mesh, least_loaded

from tests.helpers import CounterComponent, counter_interface


def fresh(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_raml_keeps_components_on_live_nodes(seed):
    sim = Simulator()
    assembly = Assembly(full_mesh(sim, size=6))
    for index in range(3):
        assembly.deploy(fresh(f"svc{index}"), f"n{index}")

    raml = Raml(assembly, period=0.5).instrument()

    def heal(raml_, violations):
        for component in list(assembly.registry):
            node = assembly.network.nodes.get(component.node_name or "")
            if node is not None and not node.up:
                candidates = [
                    n for n in assembly.network.live_nodes()
                    if n.name != component.node_name
                ]
                if not candidates:
                    return  # nowhere to go this sweep
                target = least_loaded(candidates)
                try:
                    raml_.intercessor.migrate(component.name, target.name)
                except Exception:  # noqa: BLE001 - retried next sweep
                    pass

    raml.add_constraint(all_nodes_up(),
                        Response(reconfigure=heal, escalate_after=1))
    raml.start()

    injector = FailureInjector(assembly.network, seed=seed)
    crashes = injector.random_node_crashes(
        horizon=30.0, rate=0.3, recover_after=5.0,
    )
    assert crashes > 0

    sim.run(until=40.0)
    raml.stop()

    # Every component survived and sits on a live node.
    assert len(assembly.registry) == 3
    for component in assembly.registry:
        assert component.lifecycle.can_serve
        node = assembly.network.node(component.node_name)
        assert node.up, (
            f"{component.name} stranded on dead {component.node_name}"
        )
    # The meta-level actually had to work for it.
    if any(event.kind == "node_crash" for event in injector.log):
        assert raml.health()["sweeps"] > 0


def test_component_survives_crash_of_every_other_node():
    """Sequentially crash every node except one; the component hops."""
    sim = Simulator()
    assembly = Assembly(full_mesh(sim, size=4))
    component = assembly.deploy(fresh("nomad"), "n0")
    raml = Raml(assembly, period=0.2).instrument()

    def heal(raml_, violations):
        node = assembly.network.nodes.get(component.node_name or "")
        if node is not None and not node.up:
            live = [n for n in assembly.network.live_nodes()]
            if live:
                raml_.intercessor.migrate("nomad", live[0].name)

    raml.add_constraint(all_nodes_up(),
                        Response(reconfigure=heal, escalate_after=1))
    raml.start()

    injector = FailureInjector(assembly.network)
    injector.crash_node("n0", at=1.0)
    injector.crash_node("n1", at=2.0)
    injector.crash_node("n2", at=3.0)
    sim.run(until=5.0)
    raml.stop()

    assert component.node_name == "n3"
    assert component.lifecycle.can_serve
    assert len(raml.intercessor.transactions) >= 3

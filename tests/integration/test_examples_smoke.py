"""Smoke tests: every shipped example must run cleanly end to end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    path.name for path in
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_example_inventory():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, str(root / "examples" / example)],
        capture_output=True, text=True, timeout=240, cwd=root,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example} printed nothing"


def test_module_demo_runs():
    root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True, text=True, timeout=120, cwd=root,
    )
    assert result.returncode == 0, result.stderr
    assert "INTERCESSION" in result.stdout

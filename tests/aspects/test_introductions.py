"""Unit tests for aspect introductions (inter-type declarations)."""

import pytest

from repro.aspects import Aspect, Weaver
from repro.errors import AspectError, InterfaceError
from repro.kernel import Invocation

from tests.helpers import make_counter


def snapshot_aspect():
    """Grafts a ``snapshot()`` operation returning the component state."""
    return Aspect("snapshot").introduce(
        "*.svc", "snapshot", lambda component: dict(component.state)
    )


class TestIntroduce:
    def test_introduced_operation_callable(self):
        component = make_counter()
        Weaver().weave(snapshot_aspect(), [component])
        port = component.provided_port("svc")
        port.invoke(Invocation("increment", (5,)))
        assert port.invoke(Invocation("snapshot")) == {"total": 5}

    def test_interface_version_bumped_compatibly(self):
        component = make_counter()
        port = component.provided_port("svc")
        before = port.interface
        Weaver().weave(snapshot_aspect(), [component])
        after = port.interface
        assert after.version.minor == before.version.minor + 1
        assert after.satisfies(before)
        assert "snapshot" in after

    def test_existing_operations_untouched(self):
        component = make_counter()
        Weaver().weave(snapshot_aspect(), [component])
        port = component.provided_port("svc")
        assert port.invoke(Invocation("increment", (3,))) == 3

    def test_introduction_with_params(self):
        aspect = Aspect("adder").introduce(
            "*.svc", "add_many",
            lambda component, *amounts: [
                component.increment(a) for a in amounts
            ][-1],
            params=("a", "b"),
        )
        component = make_counter()
        Weaver().weave(aspect, [component])
        port = component.provided_port("svc")
        assert port.invoke(Invocation("add_many", (2, 3))) == 5

    def test_pattern_scopes_targets(self):
        aspect = Aspect("scoped").introduce(
            "special.*", "snapshot", lambda component: dict(component.state)
        )
        special = make_counter("special")
        ordinary = make_counter("ordinary")
        Weaver().weave(aspect, [special, ordinary])
        assert "snapshot" in special.provided_port("svc").interface
        assert "snapshot" not in ordinary.provided_port("svc").interface

    def test_unweave_removes_operation_and_restores_interface(self):
        component = make_counter()
        weaver = Weaver()
        port = component.provided_port("svc")
        before = port.interface
        weaver.weave(snapshot_aspect(), [component])
        weaver.unweave("snapshot")
        assert port.interface is before
        with pytest.raises(InterfaceError):
            port.invoke(Invocation("snapshot"))

    def test_pure_introduction_aspect_needs_no_advice(self):
        component = make_counter()
        count = Weaver().weave(snapshot_aspect(), [component])
        assert count == 1

    def test_no_match_still_errors(self):
        aspect = Aspect("nowhere").introduce(
            "ghost.*", "snapshot", lambda component: None
        )
        with pytest.raises(AspectError, match="matched no join point"):
            Weaver().weave(aspect, [make_counter()])

    def test_existing_operation_not_overridden(self):
        # An introduction colliding with an existing operation is skipped:
        # advice, not replacement, is the tool for changing behaviour.
        aspect = Aspect("clash").introduce(
            "*.svc", "total", lambda component: -1
        )
        component = make_counter()
        with pytest.raises(AspectError, match="matched no join point"):
            Weaver().weave(aspect, [component])
        assert component.provided_port("svc").invoke(
            Invocation("total")) == 0

    def test_combined_advice_and_introduction(self):
        log = []
        aspect = snapshot_aspect().before(
            lambda inv: log.append(inv.operation), operation="increment"
        )
        component = make_counter()
        Weaver().weave(aspect, [component])
        port = component.provided_port("svc")
        port.invoke(Invocation("increment", (1,)))
        port.invoke(Invocation("snapshot"))
        assert log == ["increment"]

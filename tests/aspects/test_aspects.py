"""Unit tests for aspects and the weaver."""

import pytest

from repro.aspects import Aspect, JoinPoint, Pointcut, Weaver, join_points_of
from repro.errors import AspectError
from repro.kernel import Invocation

from tests.helpers import make_counter, make_echo


class TestPointcut:
    def test_wildcards(self):
        pointcut = Pointcut()
        assert pointcut.selects(JoinPoint("any", "port", "op"))

    def test_exact_match(self):
        pointcut = Pointcut(component="billing", operation="charge")
        assert pointcut.selects(JoinPoint("billing", "svc", "charge"))
        assert not pointcut.selects(JoinPoint("billing", "svc", "refund"))
        assert not pointcut.selects(JoinPoint("audit", "svc", "charge"))

    def test_prefix_match(self):
        pointcut = Pointcut(component="worker*")
        assert pointcut.selects(JoinPoint("worker3", "svc", "op"))
        assert not pointcut.selects(JoinPoint("manager", "svc", "op"))

    def test_condition_admits(self):
        pointcut = Pointcut(condition=lambda inv: inv.args and inv.args[0] > 5)
        assert pointcut.admits(Invocation("op", (6,)))
        assert not pointcut.admits(Invocation("op", (1,)))


class TestJoinPoints:
    def test_enumeration(self):
        component = make_counter()
        points = [jp for jp, _port in join_points_of(component)]
        operations = {jp.operation for jp in points}
        assert operations == {"increment", "total"}


class TestWeaver:
    def test_before_and_after_advice(self):
        component = make_counter()
        log = []
        aspect = Aspect("trace")
        aspect.before(lambda inv: log.append(f"before:{inv.operation}"),
                      operation="increment")
        aspect.after(lambda inv, result: (log.append(f"after:{result}"), result)[1],
                     operation="increment")
        weaver = Weaver()
        count = weaver.weave(aspect, [component])
        assert count == 1
        component.provided_port("svc").invoke(Invocation("increment", (3,)))
        assert log == ["before:increment", "after:3"]

    def test_after_advice_may_replace_result(self):
        component = make_counter()
        aspect = Aspect("cap").after(
            lambda inv, result: min(result, 10), operation="increment"
        )
        Weaver().weave(aspect, [component])
        port = component.provided_port("svc")
        assert port.invoke(Invocation("increment", (100,))) == 10
        assert component.state["total"] == 100  # state unchanged, result capped

    def test_around_advice_wraps(self):
        component = make_echo()
        aspect = Aspect("bracket").around(
            lambda inv, proceed: f"[{proceed(inv)}]", operation="echo"
        )
        Weaver().weave(aspect, [component])
        result = component.provided_port("svc").invoke(Invocation("echo", ("x",)))
        assert result == "[echo:x]"

    def test_on_error_advice_recovers(self):
        from tests.helpers import make_flaky

        component = make_flaky("flaky", failures=1)
        aspect = Aspect("rescue").on_error(
            lambda inv, exc: "recovered", operation="echo"
        )
        Weaver().weave(aspect, [component])
        port = component.provided_port("svc")
        assert port.invoke(Invocation("echo", ("x",))) == "recovered"
        assert port.invoke(Invocation("echo", ("y",))) == "flaky:y"

    def test_conditional_advice(self):
        component = make_counter()
        hits = []
        aspect = Aspect("big-only").before(
            lambda inv: hits.append(inv.args[0]),
            operation="increment",
            condition=lambda inv: inv.args and inv.args[0] >= 10,
        )
        Weaver().weave(aspect, [component])
        port = component.provided_port("svc")
        port.invoke(Invocation("increment", (5,)))
        port.invoke(Invocation("increment", (50,)))
        assert hits == [50]

    def test_unweave_restores_behaviour(self):
        component = make_counter()
        log = []
        aspect = Aspect("trace").before(lambda inv: log.append(1))
        weaver = Weaver()
        weaver.weave(aspect, [component])
        component.provided_port("svc").invoke(Invocation("total"))
        assert weaver.unweave("trace") == 1
        component.provided_port("svc").invoke(Invocation("total"))
        assert log == [1]
        assert not weaver.is_woven("trace")

    def test_double_weave_rejected(self):
        component = make_counter()
        aspect = Aspect("a").before(lambda inv: None)
        weaver = Weaver()
        weaver.weave(aspect, [component])
        with pytest.raises(AspectError):
            weaver.weave(aspect, [make_counter("other")])

    def test_unweave_unknown_rejected(self):
        with pytest.raises(AspectError):
            Weaver().unweave("ghost")

    def test_no_matching_join_point_rejected(self):
        component = make_counter()
        aspect = Aspect("nomatch").before(lambda inv: None, operation="fly")
        with pytest.raises(AspectError):
            Weaver().weave(aspect, [component])

    def test_unknown_mode_rejected(self):
        component = make_counter()
        aspect = Aspect("a").before(lambda inv: None)
        with pytest.raises(AspectError):
            Weaver().weave(aspect, [component], mode="quantum")

    def test_swap_interchanges_aspects(self):
        component = make_echo()
        weaver = Weaver()
        first = Aspect("deco-v1").around(
            lambda inv, proceed: f"v1({proceed(inv)})", operation="echo"
        )
        second = Aspect("deco-v2").around(
            lambda inv, proceed: f"v2({proceed(inv)})", operation="echo"
        )
        weaver.weave(first, [component])
        port = component.provided_port("svc")
        assert port.invoke(Invocation("echo", ("x",))) == "v1(echo:x)"
        weaver.swap("deco-v1", second, [component])
        assert port.invoke(Invocation("echo", ("x",))) == "v2(echo:x)"
        assert weaver.woven_names() == ["deco-v2"]

    def test_static_mode_produces_same_semantics(self):
        for mode in ("dynamic", "static"):
            component = make_counter(f"c-{mode}")
            log = []
            aspect = Aspect(f"trace-{mode}").before(
                lambda inv: log.append(inv.operation), operation="increment"
            )
            Weaver().weave(aspect, [component], mode=mode)
            port = component.provided_port("svc")
            port.invoke(Invocation("increment", (1,)))
            port.invoke(Invocation("total"))
            assert log == ["increment"], mode

    def test_crosscutting_over_multiple_components(self):
        components = [make_counter(f"c{i}") for i in range(3)]
        calls = []
        aspect = Aspect("global-trace").before(
            lambda inv: calls.append(inv.operation), operation="total"
        )
        count = Weaver().weave(aspect, components)
        assert count == 3
        for component in components:
            component.provided_port("svc").invoke(Invocation("total"))
        assert calls == ["total"] * 3

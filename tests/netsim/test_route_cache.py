"""Route-cache behaviour: reuse, invalidation, no stale routes.

Covers the shortest-path cache introduced with the kernel fast-path work:
repeated sends between the same pair must not recompute Dijkstra, while
any topology or link-state change must invalidate every cached path —
including cached negative (no-route) results.
"""

import pytest

from repro.errors import LinkDownError, NetworkError
from repro.events import Simulator
from repro.netsim import Message, Network


def triangle():
    """a-b direct (slow) plus a-c-b detour (fast)."""
    net = Network(Simulator())
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b", latency=0.010)
    net.add_link("a", "c", latency=0.001)
    net.add_link("c", "b", latency=0.001)
    return net


class TestCaching:
    def test_repeated_lookups_hit_the_cache(self):
        net = triangle()
        first = net.route("a", "b")
        assert first == ["a", "c", "b"]  # detour is cheaper
        assert net._route_cache[("a", "b")] == first
        # Mutate the cached list object: a cache hit returns it as-is,
        # proving no recomputation happened.
        net._route_cache[("a", "b")].append("sentinel")
        assert net.route("a", "b")[-1] == "sentinel"

    def test_no_route_result_is_negatively_cached(self):
        net = Network(Simulator())
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(NetworkError):
            net.route("a", "b")
        assert net._route_cache[("a", "b")] is None
        with pytest.raises(NetworkError):
            net.route("a", "b")

    def test_self_route_needs_no_cache(self):
        net = triangle()
        assert net.route("a", "a") == ["a"]
        assert ("a", "a") not in net._route_cache


class TestInvalidation:
    def test_add_link_recomputes_shorter_route(self):
        net = Network(Simulator())
        for name in ("a", "b", "c"):
            net.add_node(name)
        net.add_link("a", "c", latency=0.001)
        net.add_link("c", "b", latency=0.001)
        assert net.route("a", "b") == ["a", "c", "b"]
        # A new cheap direct link must win immediately — no stale detour.
        net.add_link("a", "b", latency=0.0001)
        assert net.route("a", "b") == ["a", "b"]

    def test_remove_link_recomputes_around_the_gap(self):
        net = triangle()
        assert net.route("a", "b") == ["a", "c", "b"]
        net.remove_link("a", "c")
        assert net.route("a", "b") == ["a", "b"]

    def test_remove_link_clears_negative_cache_symmetry(self):
        # Removing the only route leaves a negative entry; restoring the
        # topology must clear it again.
        net = Network(Simulator())
        net.add_node("a")
        net.add_node("b")
        net.add_link("a", "b")
        assert net.route("a", "b") == ["a", "b"]
        net.remove_link("a", "b")
        with pytest.raises(NetworkError):
            net.route("a", "b")
        net.add_link("a", "b")
        assert net.route("a", "b") == ["a", "b"]

    def test_remove_unknown_link_rejected(self):
        net = triangle()
        with pytest.raises(LinkDownError):
            net.remove_link("a", "missing")

    def test_remove_link_is_direction_agnostic(self):
        net = triangle()
        removed = net.remove_link("c", "a")  # added as (a, c)
        assert removed.key == ("a", "c")
        with pytest.raises(LinkDownError):
            net.link_between("a", "c")

    def test_link_failure_with_invalidate_reroutes(self):
        net = triangle()
        assert net.route("a", "b") == ["a", "c", "b"]
        net.link_between("a", "c").fail()
        net.invalidate_routes()
        assert net.route("a", "b") == ["a", "b"]
        net.link_between("a", "c").restore()
        net.invalidate_routes()
        assert net.route("a", "b") == ["a", "c", "b"]


class TestDeliveryAfterTopologyChange:
    def test_messages_follow_the_updated_route(self):
        net = triangle()
        sim = net.sim
        inbox = []
        net.node("b").bind_endpoint(
            "svc", lambda node, message: inbox.append(message.msg_id))
        net.send(Message("a", "b", "svc"))
        sim.run()
        assert len(inbox) == 1
        detour = net.link_between("a", "c")
        assert detour.transferred_messages == 1

        net.remove_link("a", "c")
        net.send(Message("a", "b", "svc"))
        sim.run()
        assert len(inbox) == 2
        # No stale route: the second message used the direct link.
        direct = net.link_between("a", "b")
        assert direct.transferred_messages == 1

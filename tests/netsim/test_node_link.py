"""Unit tests for nodes and links."""

import pytest

from repro.errors import CapacityError, LinkDownError, NodeDownError
from repro.events import Simulator
from repro.netsim import Link, Message, Node, least_loaded


def make_node(name="n", capacity=100.0):
    return Node(name, Simulator(), capacity=capacity)


class TestNode:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(CapacityError):
            Node("n", Simulator(), capacity=0.0)

    def test_execution_time_scales_with_capacity(self):
        fast = make_node(capacity=200.0)
        slow = make_node(capacity=50.0)
        assert fast.execution_time(100.0) < slow.execution_time(100.0)

    def test_execution_time_inflates_with_load(self):
        node = make_node()
        idle = node.execution_time(10.0)
        node.set_background_load(0.8)
        assert node.execution_time(10.0) == pytest.approx(idle / 0.2)

    def test_background_load_clamped(self):
        node = make_node()
        node.set_background_load(5.0)
        assert node.background_load == pytest.approx(0.99)
        node.set_background_load(-1.0)
        assert node.background_load == 0.0

    def test_reserve_and_release(self):
        node = make_node(capacity=100.0)
        node.reserve(30.0)
        assert node.utilisation == pytest.approx(0.3)
        node.release(30.0)
        assert node.utilisation == 0.0

    def test_reserve_over_capacity_rejected(self):
        node = make_node(capacity=100.0)
        node.reserve(80.0)
        with pytest.raises(CapacityError):
            node.reserve(30.0)

    def test_release_never_goes_negative(self):
        node = make_node()
        node.release(50.0)
        assert node.reserved == 0.0

    def test_deliver_to_down_node_raises(self):
        node = make_node()
        node.crash()
        with pytest.raises(NodeDownError):
            node.deliver(Message("x", "n", "svc"))

    def test_crash_and_recover_callbacks(self):
        node = make_node()
        log = []
        node.on_crash.append(lambda n: log.append("crash"))
        node.on_recover.append(lambda n: log.append("recover"))
        node.crash()
        node.crash()  # idempotent
        node.recover()
        node.recover()  # idempotent
        assert log == ["crash", "recover"]
        assert node.crash_count == 1

    def test_endpoint_bind_unbind(self):
        node = make_node()
        node.bind_endpoint("svc", lambda n, m: None)
        assert node.has_endpoint("svc")
        node.unbind_endpoint("svc")
        assert not node.has_endpoint("svc")

    def test_least_loaded_picks_lowest_utilisation(self):
        a, b, c = make_node("a"), make_node("b"), make_node("c")
        a.set_background_load(0.5)
        b.set_background_load(0.1)
        c.set_background_load(0.9)
        assert least_loaded([a, b, c]) is b

    def test_least_loaded_skips_down_nodes(self):
        a, b = make_node("a"), make_node("b")
        a.set_background_load(0.0)
        a.crash()
        b.set_background_load(0.9)
        assert least_loaded([a, b]) is b

    def test_least_loaded_empty_raises(self):
        a = make_node()
        a.crash()
        with pytest.raises(NodeDownError):
            least_loaded([a])


class TestLink:
    def test_transfer_time(self):
        link = Link("a", "b", latency=0.5, bandwidth=100.0)
        assert link.transfer_time(50) == pytest.approx(0.5 + 0.5)

    def test_transfer_on_down_link_raises(self):
        link = Link("a", "b")
        link.fail()
        with pytest.raises(LinkDownError):
            link.transfer_time(10)
        link.restore()
        assert link.transfer_time(10) >= 0

    def test_key_is_canonical(self):
        assert Link("b", "a").key == Link("a", "b").key == ("a", "b")

    def test_other_endpoint(self):
        link = Link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(LinkDownError):
            link.other("c")

    def test_set_quality_validates(self):
        link = Link("a", "b")
        link.set_quality(latency=0.2, bandwidth=10.0, loss=2.0)
        assert link.loss == 1.0
        with pytest.raises(LinkDownError):
            link.set_quality(latency=-1.0)
        with pytest.raises(LinkDownError):
            link.set_quality(bandwidth=0.0)

    def test_invalid_construction(self):
        with pytest.raises(LinkDownError):
            Link("a", "b", latency=-0.1)
        with pytest.raises(LinkDownError):
            Link("a", "b", bandwidth=0.0)

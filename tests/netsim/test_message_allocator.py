"""Scoped message-id allocation (the fix for the process-global
``itertools.count``): ids come from an injectable allocator, so every
region — in any process, on any backend, after any replay — mints the
same ids for the same work."""

import pytest

from repro.netsim import (
    Message,
    MessageIdAllocator,
    current_allocator,
    reset_message_ids,
    use_allocator,
)
from repro.parallel import MSG_ID_STRIDE


class TestMessageIdAllocator:
    def test_allocates_sequential_ids(self):
        allocator = MessageIdAllocator(100)
        assert [allocator.allocate() for _ in range(3)] == [100, 101, 102]

    def test_custom_stride(self):
        allocator = MessageIdAllocator(5, stride=10)
        assert [allocator.allocate() for _ in range(3)] == [5, 15, 25]

    def test_use_allocator_returns_previous(self):
        original = current_allocator()
        mine = MessageIdAllocator(1)
        try:
            previous = use_allocator(mine)
            assert previous is original
            assert current_allocator() is mine
        finally:
            use_allocator(original)
        assert current_allocator() is original

    def test_messages_draw_from_active_allocator(self):
        previous = use_allocator(MessageIdAllocator(7_000))
        try:
            first = Message(source="a", destination="b", endpoint="e")
            second = Message(source="a", destination="b", endpoint="e")
        finally:
            use_allocator(previous)
        assert (first.msg_id, second.msg_id) == (7_000, 7_001)

    def test_same_start_reproduces_ids(self):
        """The determinism contract: a replayed worker re-creates its
        allocator from the region number and mints identical ids."""

        def mint(n):
            previous = use_allocator(MessageIdAllocator(3 * MSG_ID_STRIDE + 1))
            try:
                return [Message(source="a", destination="b",
                                endpoint="e").msg_id for _ in range(n)]
            finally:
                use_allocator(previous)

        assert mint(5) == mint(5)

    def test_region_ranges_are_disjoint(self):
        """Per-region allocators seeded at region * MSG_ID_STRIDE never
        collide for any realistic message volume."""
        a = MessageIdAllocator(0 * MSG_ID_STRIDE + 1)
        b = MessageIdAllocator(1 * MSG_ID_STRIDE + 1)
        ids_a = {a.allocate() for _ in range(1000)}
        ids_b = {b.allocate() for _ in range(1000)}
        assert not ids_a & ids_b


class TestDeprecatedGlobalReset:
    def test_reset_message_ids_warns(self):
        with pytest.warns(DeprecationWarning):
            reset_message_ids()

    def test_reset_still_resets_the_default_allocator(self):
        with pytest.warns(DeprecationWarning):
            reset_message_ids()
        first = Message(source="a", destination="b", endpoint="e").msg_id
        with pytest.warns(DeprecationWarning):
            reset_message_ids()
        again = Message(source="a", destination="b", endpoint="e").msg_id
        assert first == again

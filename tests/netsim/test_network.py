"""Unit tests for the network simulator."""

import pytest

from repro.errors import LinkDownError, NetworkError
from repro.events import Simulator
from repro.netsim import Message, Network


def two_node_net(latency=0.01, bandwidth=1000.0, loss=0.0, seed=0):
    sim = Simulator()
    net = Network(sim, seed=seed)
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency=latency, bandwidth=bandwidth, loss=loss)
    return sim, net


def test_message_delivered_to_endpoint():
    sim, net = two_node_net()
    received = []
    net.node("b").bind_endpoint("svc", lambda node, msg: received.append(msg.payload))
    net.send(Message("a", "b", "svc", payload="hello", size=100))
    sim.run()
    assert received == ["hello"]
    assert net.stats.delivered == 1


def test_delivery_takes_latency_plus_transmission():
    sim, net = two_node_net(latency=0.01, bandwidth=1000.0)
    arrival = []
    net.node("b").bind_endpoint("svc", lambda node, msg: arrival.append(sim.now))
    net.send(Message("a", "b", "svc", size=500))
    sim.run()
    assert arrival == [pytest.approx(0.01 + 500 / 1000.0)]


def test_duplicate_node_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    with pytest.raises(NetworkError):
        net.add_node("a")


def test_self_link_and_duplicate_link_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    with pytest.raises(NetworkError):
        net.add_link("a", "a")
    net.add_link("a", "b")
    with pytest.raises(NetworkError):
        net.add_link("b", "a")


def test_link_to_unknown_node_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    with pytest.raises(NetworkError):
        net.add_link("a", "ghost")


def test_multi_hop_routing_sums_latency():
    sim = Simulator()
    net = Network(sim)
    for name in "abc":
        net.add_node(name)
    net.add_link("a", "b", latency=0.01, bandwidth=1e9)
    net.add_link("b", "c", latency=0.02, bandwidth=1e9)
    arrival = []
    net.node("c").bind_endpoint("svc", lambda node, msg: arrival.append(sim.now))
    net.send(Message("a", "c", "svc", size=0))
    sim.run()
    assert arrival == [pytest.approx(0.03)]


def test_route_prefers_lower_total_latency():
    sim = Simulator()
    net = Network(sim)
    for name in "abcd":
        net.add_node(name)
    net.add_link("a", "d", latency=1.0)  # direct but slow
    net.add_link("a", "b", latency=0.1)
    net.add_link("b", "c", latency=0.1)
    net.add_link("c", "d", latency=0.1)
    assert net.route("a", "d") == ["a", "b", "c", "d"]


def test_no_route_counts_drop():
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")  # no link
    net.send(Message("a", "b", "svc"))
    sim.run()
    assert net.stats.dropped_no_route == 1
    assert net.stats.delivered == 0


def test_crashed_destination_drops_message():
    sim, net = two_node_net()
    net.node("b").bind_endpoint("svc", lambda node, msg: None)
    net.node("b").crash()
    net.invalidate_routes()
    net.send(Message("a", "b", "svc"))
    sim.run()
    assert net.stats.delivered == 0
    assert net.stats.dropped > 0


def test_node_crash_mid_flight_drops_message():
    sim, net = two_node_net(latency=1.0)
    net.node("b").bind_endpoint("svc", lambda node, msg: None)
    net.send(Message("a", "b", "svc", size=0))
    sim.at(net.node("b").crash, when=0.5)
    sim.run()
    assert net.stats.delivered == 0
    assert net.stats.dropped_node_down == 1


def test_link_failure_drops_in_new_sends():
    sim, net = two_node_net()
    net.node("b").bind_endpoint("svc", lambda node, msg: None)
    net.link_between("a", "b").fail()
    net.invalidate_routes()
    net.send(Message("a", "b", "svc"))
    sim.run()
    assert net.stats.dropped_no_route == 1


def test_lossy_link_drops_fraction_of_messages():
    sim, net = two_node_net(loss=0.5, seed=42)
    net.node("b").bind_endpoint("svc", lambda node, msg: None)
    for _ in range(500):
        net.send(Message("a", "b", "svc", size=1))
    sim.run()
    assert 150 < net.stats.delivered < 350
    assert net.stats.dropped_loss == 500 - net.stats.delivered


def test_loss_is_deterministic_for_fixed_seed():
    results = []
    for _ in range(2):
        sim, net = two_node_net(loss=0.3, seed=7)
        net.node("b").bind_endpoint("svc", lambda node, msg: None)
        for _ in range(100):
            net.send(Message("a", "b", "svc", size=1))
        sim.run()
        results.append(net.stats.delivered)
    assert results[0] == results[1]


def test_unknown_endpoint_counts_node_drop():
    sim, net = two_node_net()
    net.send(Message("a", "b", "nope"))
    sim.run()
    assert net.node("b").dropped_messages == 1


def test_reply_to_swaps_direction():
    msg = Message("a", "b", "svc", payload="req")
    msg.headers["request_id"] = 99
    reply = msg.reply_to(payload="resp")
    assert (reply.source, reply.destination) == ("b", "a")
    assert reply.headers["in_reply_to"] == msg.msg_id
    assert reply.headers["request_id"] == 99


def test_taps_observe_send_and_deliver():
    sim, net = two_node_net()
    events = []
    net.taps.append(lambda event, msg: events.append(event))
    net.node("b").bind_endpoint("svc", lambda node, msg: None)
    net.send(Message("a", "b", "svc"))
    sim.run()
    assert events == ["send", "deliver"]


def test_utilisation_map_excludes_down_nodes():
    sim, net = two_node_net()
    net.node("a").set_background_load(0.5)
    net.node("b").crash()
    util = net.utilisation_map()
    assert "b" not in util
    assert util["a"] == pytest.approx(0.5)

"""Tests for per-direction link serialization (bandwidth contention)."""

import pytest

from repro.events import Simulator
from repro.netsim import Message, Network, line


def net_with_slow_link(bandwidth=1000.0, latency=0.0):
    sim = Simulator()
    net = Network(sim)
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency=latency, bandwidth=bandwidth)
    return sim, net


def test_single_message_unaffected():
    sim, net = net_with_slow_link(bandwidth=1000.0, latency=0.5)
    arrivals = []
    net.node("b").bind_endpoint("svc", lambda n, m: arrivals.append(sim.now))
    net.send(Message("a", "b", "svc", size=500))
    sim.run()
    assert arrivals == [pytest.approx(0.5 + 0.5)]


def test_same_direction_messages_serialize():
    sim, net = net_with_slow_link(bandwidth=1000.0)
    arrivals = []
    net.node("b").bind_endpoint("svc", lambda n, m: arrivals.append(sim.now))
    for _ in range(3):
        net.send(Message("a", "b", "svc", size=500))  # 0.5s each on wire
    sim.run()
    assert arrivals == [pytest.approx(0.5), pytest.approx(1.0),
                        pytest.approx(1.5)]


def test_opposite_directions_do_not_contend():
    sim, net = net_with_slow_link(bandwidth=1000.0)
    arrivals = {}
    net.node("a").bind_endpoint("svc",
                                lambda n, m: arrivals.setdefault("a", sim.now))
    net.node("b").bind_endpoint("svc",
                                lambda n, m: arrivals.setdefault("b", sim.now))
    net.send(Message("a", "b", "svc", size=500))
    net.send(Message("b", "a", "svc", size=500))
    sim.run()
    # Full duplex: both arrive after one transmission time, not two.
    assert arrivals["a"] == pytest.approx(0.5)
    assert arrivals["b"] == pytest.approx(0.5)


def test_transmitter_frees_up_over_time():
    sim, net = net_with_slow_link(bandwidth=1000.0)
    arrivals = []
    net.node("b").bind_endpoint("svc", lambda n, m: arrivals.append(sim.now))
    net.send(Message("a", "b", "svc", size=500))
    # Second message sent after the first finished transmitting: no wait.
    sim.at(lambda: net.send(Message("a", "b", "svc", size=500)), when=2.0)
    sim.run()
    assert arrivals == [pytest.approx(0.5), pytest.approx(2.5)]


def test_contention_on_middle_hop():
    sim = Simulator()
    net = line(sim, length=3, latency=0.0, bandwidth=1000.0)
    arrivals = []
    net.node("n2").bind_endpoint("svc", lambda n, m: arrivals.append(sim.now))
    # Two flows converge on the n1->n2 hop.
    net.send(Message("n0", "n2", "svc", size=500))
    net.send(Message("n1", "n2", "svc", size=500))
    sim.run()
    # n1's message grabs the n1->n2 transmitter first (it has no first
    # hop); n0's message arrives at n1 at t=0.5 and then waits behind it.
    assert sorted(arrivals) == [pytest.approx(0.5), pytest.approx(1.0)]

"""Unit tests for topology builders and failure injection."""

import pytest

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim import (
    FailureInjector,
    Message,
    datacenter,
    full_mesh,
    hosts,
    line,
    ring,
    star,
)


class TestTopologies:
    def test_star_shape(self):
        net = star(Simulator(), leaves=3)
        assert set(net.nodes) == {"hub", "leaf0", "leaf1", "leaf2"}
        assert len(net.links) == 3
        assert net.route("leaf0", "leaf2") == ["leaf0", "hub", "leaf2"]

    def test_line_shape(self):
        net = line(Simulator(), length=4)
        assert net.route("n0", "n3") == ["n0", "n1", "n2", "n3"]

    def test_ring_has_two_directions(self):
        net = ring(Simulator(), size=6)
        assert len(net.links) == 6
        # Shortest way from n0 to n5 is the single back-edge.
        assert net.route("n0", "n5") == ["n0", "n5"]

    def test_mesh_is_single_hop_everywhere(self):
        net = full_mesh(Simulator(), size=5)
        assert len(net.links) == 10
        assert net.route("n0", "n4") == ["n0", "n4"]

    def test_datacenter_shape_and_hosts(self):
        net = datacenter(Simulator(), racks=2, hosts_per_rack=3)
        host_names = hosts(net)
        assert len(host_names) == 6
        assert all("-host" in name for name in host_names)
        assert net.route("rack0-host0", "rack1-host2") == [
            "rack0-host0", "rack0", "core", "rack1", "rack1-host2",
        ]

    def test_size_validation(self):
        with pytest.raises(NetworkError):
            star(Simulator(), leaves=0)
        with pytest.raises(NetworkError):
            line(Simulator(), length=1)
        with pytest.raises(NetworkError):
            ring(Simulator(), size=2)
        with pytest.raises(NetworkError):
            full_mesh(Simulator(), size=1)
        with pytest.raises(NetworkError):
            datacenter(Simulator(), racks=0)


class TestFailureInjector:
    def test_scheduled_crash_and_recovery(self):
        sim = Simulator()
        net = line(sim, length=3)
        injector = FailureInjector(net)
        injector.crash_node("n1", at=1.0, recover_after=2.0)
        sim.run(until=1.5)
        assert not net.node("n1").up
        sim.run(until=4.0)
        assert net.node("n1").up
        kinds = [event.kind for event in injector.log]
        assert kinds == ["node_crash", "node_recover"]

    def test_crash_reroutes_traffic(self):
        sim = Simulator()
        net = ring(sim, size=4)
        received = []
        net.node("n2").bind_endpoint("svc", lambda n, m: received.append(sim.now))
        injector = FailureInjector(net)
        injector.crash_node("n1", at=0.5)
        sim.run(until=1.0)
        # n0 -> n2 must now route around the ring via n3.
        assert net.route("n0", "n2") == ["n0", "n3", "n2"]
        net.send(Message("n0", "n2", "svc", size=0))
        sim.run()
        assert len(received) == 1

    def test_link_flap_restores(self):
        sim = Simulator()
        net = line(sim, length=2)
        injector = FailureInjector(net)
        injector.flap_link("n0", "n1", at=1.0, down_for=1.0)
        sim.run(until=1.5)
        assert not net.link_between("n0", "n1").up
        sim.run(until=3.0)
        assert net.link_between("n0", "n1").up

    def test_random_crashes_deterministic_per_seed(self):
        counts = []
        for _ in range(2):
            sim = Simulator()
            net = full_mesh(sim, size=4)
            injector = FailureInjector(net, seed=11)
            counts.append(
                injector.random_node_crashes(horizon=100.0, rate=0.1, recover_after=5.0)
            )
        assert counts[0] == counts[1] > 0

    def test_random_link_flaps_on_empty_network(self):
        sim = Simulator()
        net = line(sim, length=2)
        net.links.clear()
        injector = FailureInjector(net)
        assert injector.random_link_flaps(horizon=10.0, rate=1.0, down_for=1.0) == 0

"""Additional network-simulator coverage: stats, in-flight accounting,
route invalidation and multi-hop loss."""

import pytest

from repro.events import Simulator
from repro.netsim import Message, Network, line, ring


def test_stats_snapshot_fields():
    sim = Simulator()
    net = line(sim, length=2)
    net.node("n1").bind_endpoint("svc", lambda node, msg: None)
    for _ in range(3):
        net.send(Message("n0", "n1", "svc", size=100))
    sim.run()
    snapshot = net.stats.snapshot()
    assert snapshot["sent"] == 3
    assert snapshot["delivered"] == 3
    assert snapshot["dropped"] == 0
    assert snapshot["total_bytes"] == 300
    assert snapshot["mean_latency"] > 0


def test_in_flight_accounting():
    sim = Simulator()
    net = line(sim, length=2, latency=1.0)
    net.node("n1").bind_endpoint("svc", lambda node, msg: None)
    net.send(Message("n0", "n1", "svc", size=0))
    assert net.in_flight == 1
    sim.run()
    assert net.in_flight == 0


def test_in_flight_decrements_on_drop():
    sim = Simulator()
    net = line(sim, length=3, latency=0.5)
    net.node("n2").bind_endpoint("svc", lambda node, msg: None)
    net.send(Message("n0", "n2", "svc", size=0))
    # Second hop's link dies while the message is on the first hop.
    sim.at(net.link_between("n1", "n2").fail, when=0.25)
    sim.run()
    assert net.in_flight == 0
    assert net.stats.dropped_link_down == 1


def test_route_cache_invalidation_after_repair():
    sim = Simulator()
    net = ring(sim, size=4)
    assert net.route("n0", "n2") in (["n0", "n1", "n2"], ["n0", "n3", "n2"])
    net.link_between("n0", "n1").fail()
    net.invalidate_routes()
    assert net.route("n0", "n2") == ["n0", "n3", "n2"]
    net.link_between("n0", "n1").restore()
    net.invalidate_routes()
    assert len(net.route("n0", "n2")) == 3


def test_multi_hop_loss_compounds():
    """Per-hop loss means longer paths lose more messages."""
    delivered = {}
    for hops in (1, 3):
        sim = Simulator()
        net = line(sim, length=hops + 1, seed=99)
        for link in net.links.values():
            link.loss = 0.2
        last = f"n{hops}"
        net.node(last).bind_endpoint("svc", lambda node, msg: None)
        for _ in range(800):
            net.send(Message("n0", last, "svc", size=1))
        sim.run()
        delivered[hops] = net.stats.delivered
    assert delivered[3] < delivered[1]
    # Roughly (1 - 0.2)^hops of the traffic should survive.
    assert delivered[1] == pytest.approx(800 * 0.8, rel=0.1)
    assert delivered[3] == pytest.approx(800 * 0.8 ** 3, rel=0.15)


def test_send_from_down_node_drops():
    sim = Simulator()
    net = line(sim, length=2)
    net.node("n0").crash()
    net.send(Message("n0", "n1", "svc"))
    sim.run()
    assert net.stats.dropped_node_down == 1


def test_send_to_self_delivers_locally():
    sim = Simulator()
    net = line(sim, length=2)
    received = []
    net.node("n0").bind_endpoint("svc", lambda node, msg: received.append(1))
    net.send(Message("n0", "n0", "svc"))
    sim.run()
    assert received == [1]

"""Meta-level robustness: crashing constraints and responses."""

import pytest

from repro.core import Raml, Response, custom
from repro.events import Simulator
from repro.kernel import Assembly
from repro.netsim import star


def make_raml():
    sim = Simulator()
    return sim, Raml(Assembly(star(sim, leaves=1)), period=0.5)


def test_crashing_constraint_becomes_violation():
    _sim, raml = make_raml()

    def explode(view):
        raise RuntimeError("constraint bug")

    raml.add_constraint(custom("buggy", explode))
    raml.add_constraint(custom("fine", lambda view: []))
    record = raml.sweep()
    assert "buggy" in record.violations
    assert "constraint check crashed" in record.violations["buggy"][0]
    assert "fine" not in record.violations


def test_crashing_constraint_does_not_stop_periodic_sweeps():
    sim, raml = make_raml()
    raml.add_constraint(custom("buggy", lambda view: 1 / 0))
    raml.start()
    sim.run(until=2.6)
    raml.stop()
    assert len(raml.history) == 5
    assert all("buggy" in record.violations for record in raml.history)


def test_crashed_constraint_can_trigger_response():
    _sim, raml = make_raml()
    reactions = []
    raml.add_constraint(
        custom("buggy", lambda view: 1 / 0),
        Response(adapt=lambda r, v: reactions.append(v)),
    )
    raml.sweep()
    assert reactions and "crashed" in reactions[0][0]

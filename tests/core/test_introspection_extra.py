"""Additional introspection-hub coverage: binding taps, buffers, queries."""

from repro.core import IntrospectionHub
from repro.events import Simulator
from repro.kernel import Component, bind

from tests.helpers import counter_interface, make_counter, make_flaky


def make_hub():
    return IntrospectionHub(Simulator())


def make_channel():
    client = Component("client")
    client.require("peer", counter_interface())
    client.activate()
    server = make_counter("server")
    binding = bind(client.required_port("peer"), server.provided_port("svc"))
    return client, server, binding


class TestBindingTap:
    def test_successful_calls_observed(self):
        hub = make_hub()
        client, _server, binding = make_channel()
        hub.tap_binding(binding)
        client.required_port("peer").call("increment", 1)
        events = [e for e in hub.recent() if e.source.startswith("binding:")]
        assert len(events) == 1
        assert events[0].kind == "call"
        assert events[0].operation == "increment"

    def test_failed_calls_observed_as_errors(self):
        import pytest

        hub = make_hub()
        client = Component("client")
        from tests.helpers import echo_interface

        client.require("peer", echo_interface())
        client.activate()
        flaky = make_flaky("flaky", failures=1)
        binding = bind(client.required_port("peer"),
                       flaky.provided_port("svc"))
        hub.tap_binding(binding)
        with pytest.raises(RuntimeError):
            client.required_port("peer").call("echo", "x")
        assert hub.count("error") == 1

    def test_double_tap_is_idempotent(self):
        hub = make_hub()
        client, _server, binding = make_channel()
        hub.tap_binding(binding)
        hub.tap_binding(binding)
        client.required_port("peer").call("total")
        binding_events = [e for e in hub.recent()
                          if e.source.startswith("binding:")]
        assert len(binding_events) == 1


class TestHubQueries:
    def test_ring_buffer_caps_history(self):
        hub = IntrospectionHub(Simulator(), buffer_size=10)
        for index in range(25):
            hub.emit("src", "tick", str(index))
        assert len(hub.events) == 10
        assert hub.recent(5)[-1].operation == "24"
        # Counters keep the full tally even when events rotate out.
        assert hub.count("tick") == 25

    def test_subscribers_receive_live_events(self):
        hub = make_hub()
        seen = []
        hub.subscribe(lambda event: seen.append(event.kind))
        hub.emit("src", "call")
        hub.emit("src", "error")
        assert seen == ["call", "error"]

    def test_error_ratio_zero_without_traffic(self):
        assert make_hub().error_ratio() == 0.0

    def test_component_tap_covers_all_ports(self):
        hub = make_hub()
        component = make_counter("multi")
        from tests.helpers import echo_interface

        class Extra:
            def echo(self, value):
                return value

        component.provide("aux", echo_interface(), implementation=Extra())
        hub.tap_component(component)
        from repro.kernel import Invocation

        component.provided_port("svc").invoke(Invocation("total"))
        component.provided_port("aux").invoke(Invocation("echo", ("x",)))
        sources = {e.source for e in hub.recent()}
        assert "port:multi.svc" in sources
        assert "port:multi.aux" in sources

"""Unit tests for RAML: introspection, constraints, intercession, sweeps."""

import pytest

from repro.core import (
    Raml,
    Response,
    all_nodes_up,
    behavioural_conformance,
    custom,
    max_error_ratio,
    metric_bound,
    node_load_below,
    structural_consistency,
)
from repro.errors import RamlError
from repro.events import Simulator
from repro.kernel import Assembly, Invocation
from repro.lts import Lts
from repro.netsim import star

from tests.helpers import CounterComponent, counter_interface, make_flaky


def fresh_counter(name):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    return component


def wired_raml():
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=3))
    client = CounterComponent("client")
    client.provide("svc", counter_interface())
    client.require("peer", counter_interface())
    assembly.deploy(client, "leaf0")
    server = assembly.deploy(fresh_counter("server"), "leaf1")
    assembly.connect("client", "peer", target_component="server")
    raml = Raml(assembly, period=1.0).instrument()
    return sim, assembly, raml, client, server


class TestIntrospection:
    def test_port_calls_observed(self):
        _sim, _assembly, raml, client, _server = wired_raml()
        client.required_port("peer").call("increment", 1)
        kinds = [event.kind for event in raml.hub.recent()]
        assert "call" in kinds
        assert "return" in kinds

    def test_error_ratio(self):
        sim = Simulator()
        assembly = Assembly(star(sim, leaves=1))
        flaky = make_flaky("flaky", failures=1)
        # Deploy after creation so container activates it.
        flaky.lifecycle  # touch
        assembly.container_on("leaf0").deploy(flaky)
        raml = Raml(assembly).instrument()
        port = flaky.provided_port("svc")
        with pytest.raises(RuntimeError):
            port.invoke(Invocation("echo", ("x",)))
        port.invoke(Invocation("echo", ("x",)))
        assert 0 < raml.hub.error_ratio() < 1

    def test_registry_events_observed(self):
        _sim, assembly, raml, _client, _server = wired_raml()
        assembly.deploy(fresh_counter("late"), "leaf2")
        assert raml.hub.count("register") == 1

    def test_lifecycle_events_observed(self):
        _sim, _assembly, raml, _client, server = wired_raml()
        server.passivate()
        lifecycle_events = [e for e in raml.hub.recent()
                            if e.kind == "lifecycle"]
        assert lifecycle_events
        assert lifecycle_events[-1].operation == "passive"


class TestTraceConformance:
    def test_conforming_calls_pass(self):
        _sim, _assembly, raml, client, server = wired_raml()
        server.behaviour = Lts.from_triples("proto", [
            ("s0", "increment", "s0"),
            ("s0", "total", "s0"),
        ])
        raml.conformance.attach(server)
        client.required_port("peer").call("increment", 1)
        client.required_port("peer").call("total")
        assert raml.conformance.conforming("server")

    def test_violation_detected_and_reanchored(self):
        _sim, _assembly, raml, client, server = wired_raml()
        # Protocol demands strict alternation increment/total.
        server.behaviour = Lts.from_triples("proto", [
            ("s0", "increment", "s1"),
            ("s1", "total", "s0"),
        ])
        raml.conformance.attach(server)
        client.required_port("peer").call("increment", 1)
        client.required_port("peer").call("increment", 1)  # violation
        assert not raml.conformance.conforming("server")
        assert raml.conformance.violations == [("server", "increment")]
        # Re-anchored: a fresh increment/total pair is accepted again.
        client.required_port("peer").call("total")


class TestConstraints:
    def test_structural_consistency_clean(self):
        _sim, _assembly, raml, _client, _server = wired_raml()
        raml.add_constraint(structural_consistency())
        record = raml.sweep()
        assert record.healthy

    def test_unbound_port_detected(self):
        _sim, assembly, raml, client, _server = wired_raml()
        raml.add_constraint(structural_consistency())
        client.required_port("peer").binding.unbind()
        record = raml.sweep()
        assert "structural-consistency" in record.violations

    def test_duplicate_constraint_rejected(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(structural_consistency())
        with pytest.raises(RamlError):
            raml.add_constraint(structural_consistency())

    def test_metric_bound_upper(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(metric_bound("latency", "mean", 0.1))
        raml.record_metric("latency", 0.5)
        record = raml.sweep()
        assert record.violations

    def test_metric_bound_lower(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(metric_bound("fps", "mean", 24.0, lower=True))
        raml.record_metric("fps", 10.0)
        assert raml.sweep().violations

    def test_metric_bound_vacuous_when_no_data(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(metric_bound("latency", "mean", 0.1))
        assert raml.sweep().healthy

    def test_max_error_ratio(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(max_error_ratio(0.01))
        assert raml.sweep().healthy

    def test_all_nodes_up_detects_crash(self):
        _sim, assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(all_nodes_up())
        assembly.network.node("leaf1").crash()
        record = raml.sweep()
        assert "hosting-nodes-up" in record.violations

    def test_node_load_constraint(self):
        _sim, assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(node_load_below(0.8))
        assembly.network.node("leaf1").set_background_load(0.95)
        assert raml.sweep().violations

    def test_behavioural_conformance_constraint(self):
        _sim, _assembly, raml, client, server = wired_raml()
        server.behaviour = Lts.from_triples("proto", [
            ("s0", "total", "s0"),
        ])
        raml.conformance.attach(server)
        raml.add_constraint(behavioural_conformance())
        client.required_port("peer").call("increment", 1)  # not allowed
        record = raml.sweep()
        assert "behavioural-conformance" in record.violations


class TestDecideAct:
    def test_adaptation_response_runs_each_violating_sweep(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        adaptations = []
        raml.add_constraint(
            custom("always-bad", lambda view: ["bad"]),
            Response(adapt=lambda r, v: adaptations.append(v)),
        )
        raml.sweep()
        raml.sweep()
        assert len(adaptations) == 2
        assert raml.health()["adaptations"] == 2

    def test_escalation_to_reconfiguration_after_streak(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        reconfigs = []
        raml.add_constraint(
            custom("always-bad", lambda view: ["bad"]),
            Response(reconfigure=lambda r, v: reconfigs.append(r.now),
                     escalate_after=3),
        )
        raml.sweep()
        raml.sweep()
        assert reconfigs == []
        raml.sweep()
        assert len(reconfigs) == 1
        # Streak reset after escalation: two more sweeps do not re-fire.
        raml.sweep()
        raml.sweep()
        assert len(reconfigs) == 1

    def test_streak_resets_when_healthy(self):
        flag = {"bad": True}
        _sim, _assembly, raml, _c, _s = wired_raml()
        reconfigs = []
        raml.add_constraint(
            custom("flappy", lambda view: ["bad"] if flag["bad"] else []),
            Response(reconfigure=lambda r, v: reconfigs.append(1),
                     escalate_after=2),
        )
        raml.sweep()
        flag["bad"] = False
        raml.sweep()  # healthy: streak resets
        flag["bad"] = True
        raml.sweep()
        assert reconfigs == []
        raml.sweep()
        assert len(reconfigs) == 1

    def test_warn_severity_never_triggers_response(self):
        _sim, _assembly, raml, _c, _s = wired_raml()
        actions = []
        raml.add_constraint(
            custom("warn-only", lambda view: ["meh"], severity="warn"),
            Response(adapt=lambda r, v: actions.append(1), escalate_after=1),
        )
        raml.sweep()
        assert actions == []

    def test_periodic_sweeps(self):
        sim, _assembly, raml, _c, _s = wired_raml()
        raml.add_constraint(structural_consistency())
        raml.start()
        sim.run(until=4.5)
        raml.stop()
        assert len(raml.history) == 4
        assert raml.health()["sweeps"] == 4


class TestIntercession:
    def test_replace_component_via_intercessor(self):
        _sim, assembly, raml, client, _server = wired_raml()
        client.required_port("peer").call("increment", 10)
        replacement = fresh_counter("server-v2")
        report = raml.intercessor.replace_component("server", replacement)
        assert report.state.value == "committed"
        assert client.required_port("peer").call("total") == 10

    def test_migrate_via_intercessor(self):
        _sim, assembly, raml, _client, server = wired_raml()
        raml.intercessor.migrate("server", "leaf2")
        assert server.node_name == "leaf2"

    def test_rewire_via_intercessor(self):
        _sim, assembly, raml, client, server = wired_raml()
        assembly.deploy(fresh_counter("backup"), "leaf2")
        raml.intercessor.rewire("client", "peer", "backup")
        client.required_port("peer").call("increment", 5)
        assert assembly.component("backup").state["total"] == 5
        assert server.state["total"] == 0

    def test_transactions_logged(self):
        _sim, _assembly, raml, _client, _server = wired_raml()
        raml.intercessor.migrate("server", "leaf2")
        assert len(raml.intercessor.transactions) == 1

    def test_swap_attachment_unknown_connector_rejected(self):
        _sim, _assembly, raml, _client, _server = wired_raml()
        with pytest.raises(RamlError):
            raml.intercessor.swap_connector_attachment("ghost", "r", None, None)

    def test_raml_closed_loop_self_heals(self):
        """End-to-end: constraint violation -> escalated reconfiguration."""
        sim, assembly, raml, client, server = wired_raml()
        assembly.deploy(fresh_counter("standby"), "leaf2")

        def failover(raml_, violations):
            raml_.intercessor.rewire("client", "peer", "standby")

        def peer_target_alive(view):
            # The property the failover actually repairs: the client's
            # dependency must target a component on a live node.
            owner = client.required_port("peer").binding.target.component
            node = view.assembly.network.nodes[owner.node_name]
            return [] if node.up else [f"{owner.name} hosted on dead node"]

        raml.add_constraint(
            custom("peer-target-alive", peer_target_alive),
            Response(reconfigure=failover, escalate_after=2),
        )
        raml.start()
        sim.at(assembly.network.node("leaf1").crash, when=2.5)
        sim.run(until=10.0)
        raml.stop()
        # The binding now points at standby; traffic flows again.
        assert client.required_port("peer").call("increment", 1) == 1
        assert assembly.component("standby").state["total"] == 1
        assert raml.health()["reconfigurations"] == 1

"""Tests for QoS contracts under RAML governance."""

import pytest

from repro.core import Raml, Response
from repro.events import Simulator
from repro.kernel import Assembly
from repro.netsim import star
from repro.qos import QosContract, Statistic


def make_raml():
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=1))
    return sim, Raml(assembly, period=0.5, metric_window=2.0)


def test_contract_becomes_constraint():
    _sim, raml = make_raml()
    contract = QosContract("sla").require_max("latency", 0.1, Statistic.MEAN)
    raml.add_contract(contract)
    raml.record_metric("latency", 0.5)
    record = raml.sweep()
    assert "contract:sla" in record.violations
    # The violation message carries the obligation and observation.
    message = record.violations["contract:sla"][0]
    assert "mean(latency) <= 0.1" in message
    assert "0.5" in message


def test_contract_vacuous_without_data():
    _sim, raml = make_raml()
    raml.add_contract(QosContract("sla").require_max("latency", 0.1))
    assert raml.sweep().healthy


def test_contract_violation_drives_response():
    sim, raml = make_raml()
    contract = QosContract("sla").require_max("latency", 0.1)
    adaptations = []

    def adapt(raml_, violations):
        # The adaptation "fixes" the latency and acknowledges the window.
        raml_.metrics.series("latency").reset()
        raml_.record_metric("latency", 0.01)
        adaptations.append(raml_.now)

    raml.add_contract(contract, Response(adapt=adapt))
    raml.record_metric("latency", 0.9)
    raml.sweep()
    assert adaptations
    assert raml.sweep().healthy


def test_contract_registered_with_monitor_too():
    sim, raml = make_raml()
    contract = QosContract("sla").require_max("latency", 0.1)
    raml.add_contract(contract)
    raml.start()
    raml.record_metric("latency", 0.9)
    sim.run(until=1.6)
    raml.stop()
    assert raml.monitor.stats.checks >= 2
    assert raml.monitor.stats.violations >= 1


def test_multiple_contracts_independent():
    _sim, raml = make_raml()
    raml.add_contract(QosContract("lat").require_max("latency", 0.1))
    raml.add_contract(QosContract("tput").require_min("throughput", 100.0))
    raml.record_metric("latency", 0.01)
    raml.record_metric("throughput", 10.0)
    record = raml.sweep()
    assert "contract:lat" not in record.violations
    assert "contract:tput" in record.violations

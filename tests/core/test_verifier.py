"""Unit tests for whole-assembly composition-correctness verification."""

import pytest

from repro.core import (
    Raml,
    composition_correctness,
    verify_assembly,
)
from repro.events import Simulator
from repro.kernel import Assembly, Component
from repro.lts import Lts
from repro.netsim import star
from repro.connectors import (
    BroadcastConnector,
    PipelineConnector,
    RpcConnector,
    callee,
    caller,
)
from repro.connectors.connector import Connector

from tests.helpers import (
    echo_interface,
    make_echo,
    make_stage,
    stage_interface,
)


def make_assembly():
    sim = Simulator()
    return Assembly(star(sim, leaves=3))


def deploy_echo(assembly, name, node):
    component = make_echo(name)
    # make_echo activates; deploy expects to own lifecycle, so register
    # through the container on the node.
    assembly.container_on(node).deploy(component)
    return component


class TestVerifyAssembly:
    def test_empty_assembly_is_correct(self):
        report = verify_assembly(make_assembly())
        assert report.correct
        assert report.connectors_checked == 0

    def test_rpc_connector_checks_glue(self):
        assembly = make_assembly()
        connector = RpcConnector("rpc", echo_interface())
        server = deploy_echo(assembly, "server", "leaf0")
        connector.attach("server", server.provided_port("svc"))
        assembly.add_connector(connector)
        report = verify_assembly(assembly)
        assert report.correct
        assert "rpc" in report.glue_reports
        assert report.glue_reports["rpc"].deadlock_free

    def test_role_conformance_violation_detected(self):
        assembly = make_assembly()
        protocol = Lts.cycle("echo-only", ["echo"])
        connector = Connector("strict", [
            caller("client", echo_interface(), many=True),
            callee("server", echo_interface(), protocol=protocol),
        ])
        rogue = deploy_echo(assembly, "rogue", "leaf0")
        rogue.behaviour = Lts.cycle("rogue", ["echo", "sneak"])
        connector.attach("server", rogue.provided_port("svc"),
                         check_behaviour=False)  # slipped past attach
        assembly.add_connector(connector)
        report = verify_assembly(assembly)
        assert not report.correct
        assert any("exceeds role" in p for p in report.problems)
        assert report.attachments_checked == 1

    def test_broadcast_glue_rechecked_at_current_fanout(self):
        assembly = make_assembly()
        connector = BroadcastConnector("bcast", echo_interface())
        for index in range(3):
            sub = deploy_echo(assembly, f"s{index}", "leaf0")
            connector.attach("subscriber", sub.provided_port("svc"))
        assembly.add_connector(connector)
        report = verify_assembly(assembly)
        assert report.correct
        # Fan-out of 3 means the composed glue explores >3 states.
        assert report.glue_reports["bcast"].explored_states > 3

    def test_pipeline_with_no_stages_skips_glue(self):
        assembly = make_assembly()
        assembly.add_connector(PipelineConnector("pipe"))
        report = verify_assembly(assembly)
        assert report.correct
        assert "pipe" not in report.glue_reports

    def test_pipeline_glue_checked_with_stages(self):
        assembly = make_assembly()
        pipe = PipelineConnector("pipe")
        stage = make_stage("double", lambda v: v * 2)
        assembly.container_on("leaf0").deploy(stage)
        pipe.attach("stage", stage.provided_port("svc"))
        assembly.add_connector(pipe)
        report = verify_assembly(assembly)
        assert report.correct
        assert report.glue_reports["pipe"].deadlock_free

    def test_custom_glue_model_can_flag_deadlock(self):
        assembly = make_assembly()
        connector = RpcConnector("rpc", echo_interface())
        server = deploy_echo(assembly, "server", "leaf0")
        connector.attach("server", server.provided_port("svc"))
        assembly.add_connector(connector)

        def broken_model(conn):
            from repro.connectors import rpc_glue, rpc_server_protocol

            impatient = Lts.cycle("impatient", ["call", "call", "return"])
            return rpc_glue(), [impatient, rpc_server_protocol()]

        report = verify_assembly(assembly, glue_model=broken_model)
        assert not report.correct
        assert any("deadlock" in p for p in report.problems)

    def test_binding_interface_regression_detected(self):
        assembly = make_assembly()
        client = Component("client")
        client.require("peer", echo_interface())
        assembly.container_on("leaf0").deploy(client)
        server = deploy_echo(assembly, "server", "leaf1")
        assembly.connect("client", "peer", target_component="server")
        # Sabotage: narrow the provider's interface behind the binding.
        from repro.kernel import Interface, Operation

        server.provided_port("svc").interface = Interface(
            "Echo", "0.1", [Operation("echo", ("value",))]
        )
        report = verify_assembly(assembly)
        assert not report.correct
        assert any("no longer satisfied" in p for p in report.problems)


class TestCompositionCorrectnessConstraint:
    def test_constraint_feeds_raml_sweep(self):
        assembly = make_assembly()
        protocol = Lts.cycle("echo-only", ["echo"])
        connector = Connector("strict", [
            caller("client", echo_interface(), many=True),
            callee("server", echo_interface(), protocol=protocol),
        ])
        server = deploy_echo(assembly, "server", "leaf0")
        connector.attach("server", server.provided_port("svc"))
        assembly.add_connector(connector)

        raml = Raml(assembly).instrument()
        raml.add_constraint(composition_correctness())
        assert raml.sweep().healthy

        # A reconfiguration slips in a non-conforming replacement; the
        # next sweep flags the composition.
        rogue = make_echo("rogue")
        rogue.behaviour = Lts.cycle("rogue", ["echo", "sneak"])
        assembly.container_on("leaf1").deploy(rogue)
        connector.detach("server", server.provided_port("svc"))
        connector.attach("server", rogue.provided_port("svc"),
                         check_behaviour=False)
        record = raml.sweep()
        assert "composition-correctness" in record.violations

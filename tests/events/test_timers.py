"""Unit tests for one-shot and periodic timers."""

import random

import pytest

from repro.errors import ClockError
from repro.events import PeriodicTimer, Simulator, Timer


def test_one_shot_timer_fires_once():
    sim = Simulator()
    fired = []
    Timer(sim, 2.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]


def test_one_shot_timer_cancel():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_periodic_timer_fires_every_period():
    sim = Simulator()
    ticks = []
    PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda: None)
    sim.run(until=2.5)
    timer.stop()
    executed_before = sim.executed_events
    sim.run(until=10.0)
    assert timer.tick_count == 2
    assert sim.executed_events == executed_before
    assert not timer.running


def test_periodic_timer_stop_inside_callback():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
    sim.run(until=10.0)
    assert timer.tick_count == 1


def test_periodic_timer_set_period_reschedules_pending_tick():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.0)
    # The tick pending at t=3.0 moves onto the new period: 2.0 + 3.0.
    timer.set_period(3.0)
    sim.run(until=12.0)
    assert ticks == [1.0, 2.0, 5.0, 8.0, 11.0]


def test_periodic_timer_set_period_shrink_clamps_to_now():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
    sim.run(until=12.0)  # one tick at 10.0; next pending at 20.0
    # New period 1.0 would put the next tick at 11.0 — already past, so
    # it fires immediately (t=12.0) and then every period.
    timer.set_period(1.0)
    sim.run(until=14.5)
    assert ticks == [10.0, 12.0, 13.0, 14.0]


def test_periodic_timer_set_period_legacy_mode():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.0)
    # Legacy behaviour: the in-flight tick at t=3.0 still fires on the
    # old period; the new period only applies afterwards.
    timer.set_period(3.0, reschedule_pending=False)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0, 6.0, 9.0]


def test_periodic_timer_set_period_inside_callback():
    sim = Simulator()
    ticks = []

    def on_tick():
        ticks.append(sim.now)
        if len(ticks) == 2:
            timer.set_period(2.0)

    timer = PeriodicTimer(sim, 1.0, on_tick)
    sim.run(until=7.0)
    # Changed during the tick at t=2.0 — applies to every later tick,
    # exactly once (no double-scheduling).
    assert ticks == [1.0, 2.0, 4.0, 6.0]


def test_periodic_timer_set_period_preserves_jitter_offset():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(
        sim, 1.0, lambda: ticks.append(sim.now), jitter=0.1, rng=random.Random(3)
    )
    sim.run(until=1.5)  # first tick fired; second pending at tick + 1 ± 0.1
    pending = timer._event.time
    offset = pending - ticks[-1] - 1.0
    timer.set_period(5.0)
    assert timer._event.time == pytest.approx(ticks[-1] + 5.0 + offset)
    sim.run(until=ticks[-1] + 5.2)
    assert len(ticks) == 2


def test_periodic_timer_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(ClockError):
        PeriodicTimer(sim, 0.0, lambda: None)
    timer = PeriodicTimer(sim, 1.0, lambda: None)
    with pytest.raises(ClockError):
        timer.set_period(-1.0)


def test_stopped_timer_churn_does_not_leak_queue_entries():
    from repro.events.simulator import COMPACT_MIN_GARBAGE

    sim = Simulator()
    for _ in range(5000):
        PeriodicTimer(sim, 1000.0, lambda: None).stop()
    assert sim.pending_events == 0
    # Lazy-cancel garbage is compacted away instead of accumulating.
    assert sim.queue_size <= COMPACT_MIN_GARBAGE + 1
    assert sim.compactions > 0


def test_periodic_timer_jitter_stays_near_period():
    sim = Simulator()
    ticks = []
    PeriodicTimer(
        sim, 1.0, lambda: ticks.append(sim.now), jitter=0.1, rng=random.Random(7)
    )
    sim.run(until=20.0)
    gaps = [b - a for a, b in zip([0.0] + ticks, ticks)]
    assert all(0.9 <= gap <= 1.1 for gap in gaps)
    assert 17 <= len(ticks) <= 22

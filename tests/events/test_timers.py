"""Unit tests for one-shot and periodic timers."""

import random

import pytest

from repro.errors import ClockError
from repro.events import PeriodicTimer, Simulator, Timer


def test_one_shot_timer_fires_once():
    sim = Simulator()
    fired = []
    Timer(sim, 2.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]


def test_one_shot_timer_cancel():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 2.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_periodic_timer_fires_every_period():
    sim = Simulator()
    ticks = []
    PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.run(until=4.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda: None)
    sim.run(until=2.5)
    timer.stop()
    executed_before = sim.executed_events
    sim.run(until=10.0)
    assert timer.tick_count == 2
    assert sim.executed_events == executed_before
    assert not timer.running


def test_periodic_timer_stop_inside_callback():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda: timer.stop())
    sim.run(until=10.0)
    assert timer.tick_count == 1


def test_periodic_timer_set_period():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.0)
    # The tick at t=3.0 is already scheduled; the new period applies after it.
    timer.set_period(3.0)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0, 6.0, 9.0]


def test_periodic_timer_rejects_nonpositive_period():
    sim = Simulator()
    with pytest.raises(ClockError):
        PeriodicTimer(sim, 0.0, lambda: None)
    timer = PeriodicTimer(sim, 1.0, lambda: None)
    with pytest.raises(ClockError):
        timer.set_period(-1.0)


def test_periodic_timer_jitter_stays_near_period():
    sim = Simulator()
    ticks = []
    PeriodicTimer(
        sim, 1.0, lambda: ticks.append(sim.now), jitter=0.1, rng=random.Random(7)
    )
    sim.run(until=20.0)
    gaps = [b - a for a, b in zip([0.0] + ticks, ticks)]
    assert all(0.9 <= gap <= 1.1 for gap in gaps)
    assert 17 <= len(ticks) <= 22

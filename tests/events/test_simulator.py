"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import ClockError
from repro.events import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "low", priority=5)
    sim.schedule(1.0, fired.append, "high", priority=-5)
    sim.run()
    assert fired == ["high", "low"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ClockError):
        sim.schedule(-1.0, lambda: None)


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ClockError):
        sim.at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_executed_and_pending_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.executed_events == 1
    assert sim.pending_events == 0


def test_reset_clears_queue_and_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.executed_events == 0


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(ClockError):
        sim.run()

"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import ClockError
from repro.events import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(fired.append, "c", delay=3.0)
    sim.schedule(fired.append, "a", delay=1.0)
    sim.schedule(fired.append, "b", delay=2.0)
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(fired.append, label, delay=1.0)
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    fired = []
    sim.schedule(fired.append, "low", priority=5, delay=1.0)
    sim.schedule(fired.append, "high", priority=-5, delay=1.0)
    sim.run()
    assert fired == ["high", "low"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(lambda: seen.append(sim.now), delay=2.5)
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(fired.append, "early", delay=1.0)
    sim.schedule(fired.append, "late", delay=10.0)
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ClockError):
        sim.schedule(lambda: None, delay=-1.0)


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(lambda: None, delay=5.0)
    sim.run()
    with pytest.raises(ClockError):
        sim.at(lambda: None, when=1.0)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(fired.append, "x", delay=1.0)
    event.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(chain, n + 1, delay=1.0)

    sim.schedule(chain, 0, delay=1.0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(lambda: sim.call_soon(lambda: times.append(sim.now)), delay=2.0)
    sim.run()
    assert times == [2.0]


def test_max_events_limits_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(fired.append, i, delay=float(i + 1))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_executed_and_pending_counters():
    sim = Simulator()
    sim.schedule(lambda: None, delay=1.0)
    event = sim.schedule(lambda: None, delay=2.0)
    event.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert sim.executed_events == 1
    assert sim.pending_events == 0


def test_pending_count_across_cancel_and_compact_cycles():
    """Regression: the O(1) live counter must agree with a naive scan
    across schedule / cancel / compact / run cycles."""
    from repro.events.simulator import COMPACT_MIN_GARBAGE

    sim = Simulator()
    events = []
    for round_number in range(4):
        events.extend(
            sim.schedule(lambda: None, delay=float(round_number) + 1.0)
            for _ in range(COMPACT_MIN_GARBAGE)
        )
        # Cancel every other event, twice for some (double-cancel must
        # not double-count).
        for event in events[::2]:
            event.cancel()
            event.cancel()
        live = sum(1 for e in events if not e.cancelled)
        assert sim.pending_events == live
        sim.compact()
        assert sim.pending_events == live
        assert sim.queue_size == live
    sim.run(until=2.5)
    remaining = [e for e in events if not e.cancelled and e.time > 2.5]
    assert sim.pending_events == len(remaining)
    # Cancelling an event that already fired must not corrupt the counter.
    fired = [e for e in events if not e.cancelled and e.time <= 2.5]
    fired[0].cancel()
    assert sim.pending_events == len(remaining)
    sim.run()
    assert sim.pending_events == 0


def test_automatic_compaction_bounds_queue_garbage():
    from repro.events.simulator import COMPACT_MIN_GARBAGE

    sim = Simulator()
    for _ in range(20 * COMPACT_MIN_GARBAGE):
        sim.schedule(lambda: None, delay=1.0).cancel()
    assert sim.pending_events == 0
    assert sim.queue_size <= COMPACT_MIN_GARBAGE + 1
    assert sim.compactions > 0


def test_schedule_many_matches_individual_schedules():
    fired_a, fired_b = [], []
    sim_a = Simulator()
    for index in range(50):
        sim_a.schedule(fired_a.append, index, delay=float(index % 7))
    sim_b = Simulator()
    sim_b.schedule_many(
        [(float(index % 7), fired_b.append, (index,)) for index in range(50)]
    )
    sim_a.run()
    sim_b.run()
    assert fired_a == fired_b


def test_schedule_many_small_batch_on_large_heap():
    sim = Simulator()
    fired = []
    for index in range(200):
        sim.schedule(fired.append, f"big{index}", delay=10.0 + index)
    sim.schedule_many([(0.5, fired.append, ("x",)), (0.25, fired.append, ("y",))])
    sim.run(until=1.0)
    assert fired == ["y", "x"]


def test_schedule_many_absolute_and_priority():
    sim = Simulator()
    fired = []
    sim.schedule_many(
        [
            (2.0, fired.append, ("late",)),
            (1.0, fired.append, ("low", ), 5),
            (1.0, fired.append, ("high",), -5),
        ],
        absolute=True,
    )
    sim.run()
    assert fired == ["high", "low", "late"]


def test_schedule_many_rejects_past_times():
    sim = Simulator()
    sim.schedule(lambda: None, delay=1.0)
    sim.run()
    with pytest.raises(ClockError):
        sim.schedule_many([(0.5, lambda: None)], absolute=True)


def test_schedule_many_events_are_cancellable():
    sim = Simulator()
    fired = []
    events = sim.schedule_many([(1.0, fired.append, (i,)) for i in range(4)])
    events[1].cancel()
    events[2].cancel()
    assert sim.pending_events == 2
    sim.run()
    assert fired == [0, 3]


def test_reset_clears_queue_and_clock():
    sim = Simulator()
    sim.schedule(lambda: None, delay=1.0)
    sim.run()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.executed_events == 0


def test_cancel_after_reset_does_not_corrupt_counters():
    sim = Simulator()
    event = sim.schedule(lambda: None, delay=1.0)
    sim.reset()
    event.cancel()
    assert sim.pending_events == 0
    sim.schedule(lambda: None, delay=1.0)
    assert sim.pending_events == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(nested, delay=1.0)
    with pytest.raises(ClockError):
        sim.run()

"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessError
from repro.events import Delay, Signal, Simulator, Wait, all_of, spawn


def test_process_delays_advance_clock():
    sim = Simulator()
    timestamps = []

    def body():
        timestamps.append(sim.now)
        yield Delay(1.5)
        timestamps.append(sim.now)
        yield Delay(2.5)
        timestamps.append(sim.now)

    spawn(sim, body())
    sim.run()
    assert timestamps == [0.0, 1.5, 4.0]


def test_process_result_is_return_value():
    sim = Simulator()

    def body():
        yield Delay(1.0)
        return 42

    process = spawn(sim, body())
    sim.run()
    assert process.done
    assert process.result == 42


def test_wait_resumes_with_fired_value():
    sim = Simulator()
    signal = Signal("data")
    received = []

    def consumer():
        value = yield Wait(signal)
        received.append(value)

    spawn(sim, consumer())
    sim.at(signal.fire, "payload", when=3.0)
    sim.run()
    assert received == ["payload"]


def test_signal_resumes_all_waiters():
    sim = Simulator()
    signal = Signal()
    hits = []

    def waiter(label):
        yield Wait(signal)
        hits.append(label)

    for label in ("a", "b", "c"):
        spawn(sim, waiter(label))
    sim.at(signal.fire, when=1.0)
    sim.run()
    assert sorted(hits) == ["a", "b", "c"]


def test_signal_only_resumes_current_waiters():
    sim = Simulator()
    signal = Signal()
    hits = []

    def late_waiter():
        yield Delay(5.0)
        yield Wait(signal)
        hits.append("late")

    spawn(sim, late_waiter())
    sim.at(signal.fire, when=1.0)
    sim.run()
    assert hits == []  # fired before the waiter subscribed


def test_bare_yield_is_cooperative():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield
        order.append("a2")

    def b():
        order.append("b1")
        yield
        order.append("b2")

    spawn(sim, a())
    spawn(sim, b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_unknown_command_sets_process_error():
    sim = Simulator()

    def bad():
        yield "not-a-command"

    process = spawn(sim, bad())
    sim.run()
    assert process.done
    assert isinstance(process.error, ProcessError)


def test_process_exception_propagates():
    sim = Simulator()

    def boom():
        yield Delay(1.0)
        raise ValueError("kaput")

    spawn(sim, boom())
    with pytest.raises(ValueError, match="kaput"):
        sim.run()


def test_interrupt_stops_process():
    sim = Simulator()
    steps = []

    def body():
        steps.append(1)
        yield Delay(1.0)
        steps.append(2)

    process = spawn(sim, body())
    sim.run(until=0.5)
    process.interrupt()
    sim.run()
    assert steps == [1]


def test_finished_signal_fires_on_completion():
    sim = Simulator()
    notified = []

    def body():
        yield Delay(1.0)
        return "done"

    process = spawn(sim, body())
    process.finished.subscribe(notified.append)
    sim.run()
    assert notified == ["done"]


def test_all_of_fires_after_every_process():
    sim = Simulator()
    done_at = []

    def body(duration):
        yield Delay(duration)

    processes = [spawn(sim, body(d)) for d in (1.0, 3.0, 2.0)]
    gate = all_of(sim, processes)
    gate.subscribe(lambda _v: done_at.append(sim.now))
    sim.run()
    assert done_at == [3.0]


def test_all_of_with_no_processes_fires_immediately():
    sim = Simulator()
    fired = []
    gate = all_of(sim, [])
    gate.subscribe(lambda _v: fired.append(sim.now))
    sim.run()
    assert fired == [0.0]

"""The unified scheduling surface (PR 8 satellite).

One canonical shape across the API — callable first, times by keyword
(``delay=`` / ``at=`` / ``when=``), every entry point returning the
:class:`Event` handle — with the legacy positional shapes still working
behind a :class:`DeprecationWarning`.
"""

import warnings

import pytest

from repro.errors import ClockError
from repro.events import Simulator
from repro.events.simulator import Event


@pytest.fixture
def sim():
    return Simulator()


def recorder(log, tag):
    def callback(*args):
        log.append((tag, args))
    return callback


class TestCanonicalShapes:
    def test_schedule_with_delay(self, sim):
        log = []
        event = sim.schedule(recorder(log, "a"), 1, 2, delay=0.5)
        assert isinstance(event, Event)
        sim.run()
        assert log == [("a", (1, 2))]
        assert sim.now == 0.5

    def test_schedule_with_at(self, sim):
        log = []
        event = sim.schedule(recorder(log, "a"), at=2.0)
        assert isinstance(event, Event)
        sim.run()
        assert sim.now == 2.0
        assert log == [("a", ())]

    def test_schedule_default_is_now(self, sim):
        log = []
        sim.schedule(recorder(log, "now"))
        sim.run()
        assert sim.now == 0.0
        assert log == [("now", ())]

    def test_schedule_rejects_delay_and_at_together(self, sim):
        with pytest.raises(TypeError):
            sim.schedule(lambda: None, delay=1.0, at=2.0)

    def test_schedule_rejects_negative_delay(self, sim):
        with pytest.raises(ClockError):
            sim.schedule(lambda: None, delay=-1.0)

    def test_at_requires_when_keyword(self, sim):
        with pytest.raises(TypeError):
            sim.at(lambda: None)

    def test_at_with_when(self, sim):
        log = []
        event = sim.at(recorder(log, "x"), 7, when=1.5)
        assert isinstance(event, Event)
        sim.run()
        assert sim.now == 1.5
        assert log == [("x", (7,))]

    def test_at_rejects_past_times(self, sim):
        sim.schedule(lambda: None, delay=1.0)
        sim.run()
        with pytest.raises(ClockError):
            sim.at(lambda: None, when=0.5)

    def test_call_soon_returns_event(self, sim):
        log = []
        event = sim.call_soon(recorder(log, "soon"), "p")
        assert isinstance(event, Event)
        sim.run()
        assert log == [("soon", ("p",))]

    def test_priority_keyword_orders_same_time_events(self, sim):
        log = []
        sim.schedule(recorder(log, "late"), at=1.0, priority=5)
        sim.schedule(recorder(log, "early"), at=1.0, priority=-5)
        sim.run()
        assert [tag for tag, _ in log] == ["early", "late"]

    def test_events_are_cancellable_via_handle(self, sim):
        log = []
        event = sim.schedule(recorder(log, "nope"), delay=1.0)
        event.cancel()
        sim.run()
        assert log == []


class TestLegacyShapes:
    def test_legacy_schedule_warns_and_works(self, sim):
        log = []
        with pytest.warns(DeprecationWarning, match="delay="):
            event = sim.schedule(0.5, recorder(log, "legacy"), 1)
        assert isinstance(event, Event)
        sim.run()
        assert sim.now == 0.5
        assert log == [("legacy", (1,))]

    def test_legacy_at_warns_and_works(self, sim):
        log = []
        with pytest.warns(DeprecationWarning, match="when="):
            event = sim.at(2.0, recorder(log, "legacy"))
        assert isinstance(event, Event)
        sim.run()
        assert sim.now == 2.0
        assert log == [("legacy", ())]

    def test_legacy_schedule_negative_delay_still_raises(self, sim):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ClockError):
                sim.schedule(-1.0, lambda: None)

    def test_legacy_shape_without_callback_raises(self, sim):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                sim.schedule(1.0)

    def test_canonical_shape_emits_no_warning(self, sim):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim.schedule(lambda: None, delay=1.0)
            sim.at(lambda: None, when=2.0)
            sim.call_soon(lambda: None)
            sim.schedule_many([(0.1, lambda: None)])

    def test_legacy_and_canonical_interleave_identically(self):
        def run(legacy):
            sim = Simulator()
            log = []
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                if legacy:
                    sim.schedule(1.0, recorder(log, "a"))
                    sim.at(1.0, recorder(log, "b"))
                else:
                    sim.schedule(recorder(log, "a"), delay=1.0)
                    sim.at(recorder(log, "b"), when=1.0)
            sim.run()
            return [tag for tag, _ in log]

        assert run(legacy=True) == run(legacy=False)


class TestHorizonExclusiveRun:
    """``run(until=h, inclusive=False)`` — the conservative-lookahead
    contract used by :mod:`repro.parallel` round windows."""

    def test_inclusive_default_fires_events_at_horizon(self, sim):
        log = []
        sim.schedule(recorder(log, "edge"), at=1.0)
        sim.run(until=1.0)
        assert log == [("edge", ())]

    def test_exclusive_leaves_horizon_events_queued(self, sim):
        log = []
        sim.schedule(recorder(log, "edge"), at=1.0)
        sim.run(until=1.0, inclusive=False)
        assert log == []
        assert sim.now == 1.0
        assert sim.pending_events == 1

    def test_exclusive_event_fires_in_next_window(self, sim):
        log = []
        sim.schedule(recorder(log, "edge"), at=1.0)
        sim.run(until=1.0, inclusive=False)
        # a same-instant arrival injected at the barrier interleaves
        # ahead by scheduling order, deterministically
        sim.at(recorder(log, "injected"), when=1.0)
        sim.run(until=2.0, inclusive=False)
        assert [tag for tag, _ in log] == ["edge", "injected"]

    def test_exclusive_advances_clock_with_empty_queue(self, sim):
        sim.run(until=3.0, inclusive=False)
        assert sim.now == 3.0

    def test_events_before_horizon_run_in_exclusive_mode(self, sim):
        log = []
        sim.schedule(recorder(log, "in"), at=0.999)
        sim.schedule(recorder(log, "out"), at=1.0)
        sim.run(until=1.0, inclusive=False)
        assert [tag for tag, _ in log] == ["in"]

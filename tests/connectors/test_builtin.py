"""Unit tests for builtin connector kinds."""

import pytest

from repro.errors import ConnectorError
from repro.kernel import Invocation
from repro.connectors import (
    BroadcastConnector,
    EventBusConnector,
    FailoverConnector,
    LoadBalancerConnector,
    PipelineConnector,
    RpcConnector,
)

from tests.helpers import (
    echo_interface,
    make_echo,
    make_flaky,
    make_stage,
)


def call(connector, role, operation, *args, meta=None):
    invocation = Invocation(operation, args)
    if meta:
        invocation.meta.update(meta)
    return connector.endpoint(role).invoke(invocation)


class TestRpc:
    def test_forwards_to_server(self):
        rpc = RpcConnector("rpc", echo_interface())
        rpc.attach("server", make_echo("srv").provided_port("svc"))
        assert call(rpc, "client", "echo", "hi") == "srv:hi"

    def test_no_server_raises(self):
        rpc = RpcConnector("rpc", echo_interface())
        with pytest.raises(ConnectorError):
            call(rpc, "client", "echo", "hi")

    def test_retries_transient_failures(self):
        rpc = RpcConnector("rpc", echo_interface(), retries=2)
        flaky = make_flaky("flaky", failures=2)
        rpc.attach("server", flaky.provided_port("svc"))
        assert call(rpc, "client", "echo", "x") == "flaky:x"
        assert flaky.calls == 3

    def test_retries_exhausted_reraises(self):
        rpc = RpcConnector("rpc", echo_interface(), retries=1)
        rpc.attach("server", make_flaky("flaky", failures=5).provided_port("svc"))
        with pytest.raises(RuntimeError):
            call(rpc, "client", "echo", "x")


class TestBroadcast:
    def test_all_subscribers_receive(self):
        bus = BroadcastConnector("bcast", echo_interface())
        subs = [make_echo(f"s{i}") for i in range(3)]
        for sub in subs:
            bus.attach("subscriber", sub.provided_port("svc"))
        results = call(bus, "publisher", "echo", "ev")
        assert results == ["s0:ev", "s1:ev", "s2:ev"]
        assert all(sub.state["seen"] == ["ev"] for sub in subs)

    def test_error_policy_collect(self):
        bus = BroadcastConnector("bcast", echo_interface())
        bus.error_policy = "collect"
        bus.attach("subscriber", make_flaky("bad", failures=10).provided_port("svc"))
        bus.attach("subscriber", make_echo("good").provided_port("svc"))
        results = call(bus, "publisher", "echo", "ev")
        assert isinstance(results[0], RuntimeError)
        assert results[1] == "good:ev"

    def test_error_policy_raise(self):
        bus = BroadcastConnector("bcast", echo_interface())
        bus.attach("subscriber", make_flaky("bad", failures=10).provided_port("svc"))
        with pytest.raises(RuntimeError):
            call(bus, "publisher", "echo", "ev")

    def test_each_subscriber_gets_private_invocation_copy(self):
        bus = BroadcastConnector("bcast", echo_interface())
        seen_meta = []

        def tagger(invocation, proceed):
            return proceed(invocation)

        class Tagger:
            def __init__(self, label):
                self.label = label

            def echo(self, value):
                seen_meta.append(value)
                return value

        from repro.kernel import Component

        for i in range(2):
            c = Component(f"t{i}")
            c.provide("svc", echo_interface(), implementation=Tagger(i))
            c.activate()
            bus.attach("subscriber", c.provided_port("svc"))
        call(bus, "publisher", "echo", "ev")
        assert seen_meta == ["ev", "ev"]


class TestEventBus:
    def test_topic_filtering(self):
        bus = EventBusConnector("bus", echo_interface())
        video = make_echo("video")
        audio = make_echo("audio")
        everything = make_echo("everything")
        bus.subscribe(video.provided_port("svc"), topic="media.video")
        bus.subscribe(audio.provided_port("svc"), topic="media.audio")
        bus.subscribe(everything.provided_port("svc"), topic="*")
        delivered = call(bus, "publisher", "echo", "frame",
                         meta={"topic": "media.video"})
        assert delivered == 2
        assert video.state["seen"] == ["frame"]
        assert audio.state["seen"] == []
        assert everything.state["seen"] == ["frame"]

    def test_prefix_wildcard(self):
        bus = EventBusConnector("bus", echo_interface())
        media = make_echo("media")
        bus.subscribe(media.provided_port("svc"), topic="media.*")
        assert call(bus, "publisher", "echo", "x", meta={"topic": "media.video"}) == 1
        assert call(bus, "publisher", "echo", "x", meta={"topic": "system.load"}) == 0

    def test_no_subscribers_is_fine(self):
        bus = EventBusConnector("bus", echo_interface())
        assert call(bus, "publisher", "echo", "x", meta={"topic": "t"}) == 0


class TestPipeline:
    def test_stages_thread_value(self):
        pipeline = PipelineConnector("pipe")
        pipeline.attach("stage", make_stage("double", lambda v: v * 2).provided_port("svc"))
        pipeline.attach("stage", make_stage("inc", lambda v: v + 1).provided_port("svc"))
        assert call(pipeline, "source", "process", 5) == 11

    def test_stage_order_matters(self):
        pipeline = PipelineConnector("pipe")
        pipeline.attach("stage", make_stage("inc", lambda v: v + 1).provided_port("svc"))
        pipeline.attach("stage", make_stage("double", lambda v: v * 2).provided_port("svc"))
        assert call(pipeline, "source", "process", 5) == 12

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConnectorError):
            call(PipelineConnector("pipe"), "source", "process", 1)


class TestLoadBalancer:
    def make_lb(self, policy, n=3, seed=0):
        lb = LoadBalancerConnector("lb", echo_interface(), policy=policy, seed=seed)
        workers = [make_echo(f"w{i}") for i in range(n)]
        for i, worker in enumerate(workers):
            lb.attach("worker", worker.provided_port("svc"), weight=float(i + 1))
        return lb, workers

    def test_round_robin_cycles(self):
        lb, workers = self.make_lb("round_robin")
        results = [call(lb, "client", "echo", i) for i in range(6)]
        assert results == ["w0:0", "w1:1", "w2:2", "w0:3", "w1:4", "w2:5"]

    def test_random_is_seed_deterministic(self):
        lb1, _ = self.make_lb("random", seed=3)
        lb2, _ = self.make_lb("random", seed=3)
        seq1 = [call(lb1, "client", "echo", i) for i in range(10)]
        seq2 = [call(lb2, "client", "echo", i) for i in range(10)]
        assert seq1 == seq2

    def test_weighted_prefers_heavier_workers(self):
        lb, workers = self.make_lb("weighted", seed=1)
        for i in range(300):
            call(lb, "client", "echo", i)
        counts = [len(w.state["seen"]) for w in workers]
        assert counts[2] > counts[0]  # weight 3 vs weight 1

    def test_least_busy_prefers_idle(self):
        lb, workers = self.make_lb("least_busy")
        workers[0]._active_calls = 5
        workers[1]._active_calls = 2
        assert call(lb, "client", "echo", "x") == "w2:x"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConnectorError):
            LoadBalancerConnector("lb", echo_interface(), policy="psychic")

    def test_policy_swap_at_runtime(self):
        lb, _ = self.make_lb("round_robin")
        lb.set_policy("least_busy")
        assert lb.policy == "least_busy"

    def test_no_workers_raises(self):
        lb = LoadBalancerConnector("lb", echo_interface())
        with pytest.raises(ConnectorError):
            call(lb, "client", "echo", "x")


class TestFailover:
    def test_failover_to_backup(self):
        fo = FailoverConnector("fo", echo_interface())
        fo.attach("replica", make_flaky("primary", failures=100).provided_port("svc"))
        fo.attach("replica", make_echo("backup").provided_port("svc"))
        assert call(fo, "client", "echo", "x") == "backup:x"
        assert fo.failover_count == 1

    def test_suspected_primary_skipped_next_time(self):
        fo = FailoverConnector("fo", echo_interface())
        primary = make_flaky("primary", failures=1)
        fo.attach("replica", primary.provided_port("svc"))
        fo.attach("replica", make_echo("backup").provided_port("svc"))
        call(fo, "client", "echo", "a")
        call(fo, "client", "echo", "b")
        assert primary.calls == 1  # not retried while suspected

    def test_reset_restores_primary(self):
        fo = FailoverConnector("fo", echo_interface())
        primary = make_flaky("primary", failures=1)
        fo.attach("replica", primary.provided_port("svc"))
        fo.attach("replica", make_echo("backup").provided_port("svc"))
        call(fo, "client", "echo", "a")
        fo.reset()
        assert call(fo, "client", "echo", "b") == "primary:b"

    def test_all_replicas_suspected_raises(self):
        fo = FailoverConnector("fo", echo_interface())
        fo.attach("replica", make_flaky("r0", failures=100).provided_port("svc"))
        with pytest.raises(RuntimeError):
            call(fo, "client", "echo", "x")
        with pytest.raises(ConnectorError, match="all 1 replicas"):
            call(fo, "client", "echo", "x")

    def test_no_replicas_raises(self):
        fo = FailoverConnector("fo", echo_interface())
        with pytest.raises(ConnectorError):
            call(fo, "client", "echo", "x")

"""Coverage for connector statistics and description records."""

import pytest

from repro.kernel import Invocation
from repro.connectors import (
    EventBusConnector,
    LoadBalancerConnector,
    RpcConnector,
)

from tests.helpers import echo_interface, make_echo


def test_stats_count_by_role():
    bus = EventBusConnector("bus", echo_interface())
    bus.subscribe(make_echo("s0").provided_port("svc"), topic="*")
    for _ in range(3):
        invocation = Invocation("echo", ("x",))
        invocation.meta["topic"] = "t"
        bus.endpoint("publisher").invoke(invocation)
    assert bus.stats.invocations == 3
    assert bus.stats.by_role == {"publisher": 3}
    assert bus.stats.errors == 0


def test_errors_counted():
    rpc = RpcConnector("rpc", echo_interface())
    with pytest.raises(Exception):
        rpc.endpoint("client").invoke(Invocation("echo", ("x",)))
    assert rpc.stats.errors == 1


def test_describe_builtin_kinds():
    lb = LoadBalancerConnector("lb", echo_interface(), policy="least_busy")
    for index in range(2):
        lb.attach("worker", make_echo(f"w{index}").provided_port("svc"))
    info = lb.describe()
    assert info["kind"] == "load-balancer"
    assert info["enabled"] is True
    assert info["roles"]["worker"]["many"] is True
    assert info["roles"]["worker"]["attachments"] == ["w0.svc", "w1.svc"]
    assert info["roles"]["client"]["kind"] == "caller"


def test_attachment_weight_recorded():
    lb = LoadBalancerConnector("lb", echo_interface(), policy="weighted",
                               seed=1)
    attachment = lb.attach("worker", make_echo("w").provided_port("svc"),
                           weight=2.5)
    assert attachment.weight == 2.5
    assert attachment.name == "w.svc"

"""Unit tests for the connector base class and roles."""

import pytest

from repro.errors import ConnectorError, RoleError
from repro.kernel import Component, Interface, Invocation, Operation, bind
from repro.lts import Lts
from repro.connectors import Connector, RoleKind, callee, caller

from tests.helpers import echo_interface, make_echo


def direct_connector(name="conn"):
    return Connector(name, [
        caller("client", echo_interface(), many=True),
        callee("server", echo_interface()),
    ])


class TestConstruction:
    def test_needs_roles(self):
        with pytest.raises(ConnectorError):
            Connector("empty", [])

    def test_duplicate_role_names_rejected(self):
        with pytest.raises(ConnectorError):
            Connector("dup", [
                caller("x", echo_interface()),
                callee("x", echo_interface()),
            ])

    def test_role_lookup(self):
        connector = direct_connector()
        assert connector.role("client").kind is RoleKind.CALLER
        with pytest.raises(RoleError):
            connector.role("ghost")


class TestEndpoints:
    def test_caller_role_exposes_endpoint(self):
        connector = direct_connector()
        endpoint = connector.endpoint("client")
        assert endpoint.interface.name == "Echo"
        assert endpoint.qualified_name == "conn:client"
        assert connector.endpoint("client") is endpoint  # cached

    def test_callee_role_has_no_endpoint(self):
        with pytest.raises(RoleError):
            direct_connector().endpoint("server")


class TestAttachment:
    def test_attach_and_route(self):
        connector = direct_connector()
        server = make_echo("server")
        connector.attach("server", server.provided_port("svc"))
        result = connector.endpoint("client").invoke(Invocation("echo", ("hi",)))
        assert result == "server:hi"
        assert connector.is_complete()

    def test_attach_to_caller_role_rejected(self):
        connector = direct_connector()
        with pytest.raises(RoleError):
            connector.attach("client", make_echo().provided_port("svc"))

    def test_interface_mismatch_rejected(self):
        connector = direct_connector()
        stranger = Component("stranger")
        stranger.provide("svc", Interface("Other", "1.0", [Operation("x")]))
        stranger.activate()
        with pytest.raises(RoleError):
            connector.attach("server", stranger.provided_port("svc"))

    def test_single_role_rejects_second_attachment(self):
        connector = direct_connector()
        connector.attach("server", make_echo("a").provided_port("svc"))
        with pytest.raises(RoleError):
            connector.attach("server", make_echo("b").provided_port("svc"))

    def test_detach(self):
        connector = direct_connector()
        server = make_echo("server")
        connector.attach("server", server.provided_port("svc"))
        connector.detach("server", server.provided_port("svc"))
        assert not connector.is_complete()
        with pytest.raises(RoleError):
            connector.detach("server", server.provided_port("svc"))

    def test_replace_attachment(self):
        connector = direct_connector()
        old, new = make_echo("old"), make_echo("new")
        connector.attach("server", old.provided_port("svc"))
        connector.replace_attachment(
            "server", old.provided_port("svc"), new.provided_port("svc")
        )
        result = connector.endpoint("client").invoke(Invocation("echo", ("x",)))
        assert result == "new:x"

    def test_route_without_attachment_fails(self):
        connector = direct_connector()
        with pytest.raises(ConnectorError):
            connector.endpoint("client").invoke(Invocation("echo", ("x",)))

    def test_behaviour_checked_against_role_protocol(self):
        protocol = Lts.cycle("echo-protocol", ["echo"])
        connector = Connector("conn", [
            caller("client", echo_interface(), many=True),
            callee("server", echo_interface(), protocol=protocol),
        ])
        good = make_echo("good")
        good.behaviour = Lts.cycle("good", ["echo"])
        connector.attach("server", good.provided_port("svc"))

        bad = make_echo("bad")
        bad.behaviour = Lts.cycle("bad", ["echo", "sneak"])
        with pytest.raises(RoleError):
            Connector("conn2", [
                caller("client", echo_interface(), many=True),
                callee("server", echo_interface(), protocol=protocol),
            ]).attach("server", bad.provided_port("svc"))

    def test_behaviour_check_can_be_skipped(self):
        protocol = Lts.cycle("echo-protocol", ["echo"])
        connector = Connector("conn", [
            caller("client", echo_interface(), many=True),
            callee("server", echo_interface(), protocol=protocol),
        ])
        bad = make_echo("bad")
        bad.behaviour = Lts.cycle("bad", ["echo", "sneak"])
        connector.attach("server", bad.provided_port("svc"), check_behaviour=False)


class TestPipelineIntegration:
    def test_component_binds_to_connector_endpoint(self):
        connector = direct_connector()
        server = make_echo("server")
        connector.attach("server", server.provided_port("svc"))

        client = Component("client")
        client.require("peer", echo_interface())
        client.activate()
        bind(client.required_port("peer"), connector.endpoint("client"))
        assert client.required_port("peer").call("echo", "via-conn") == "server:via-conn"

    def test_interceptors_wrap_routing(self):
        connector = direct_connector()
        connector.attach("server", make_echo("server").provided_port("svc"))
        trace = []

        def spy(invocation, proceed):
            trace.append("before")
            result = proceed(invocation)
            trace.append("after")
            return result

        connector.interceptors.append(spy)
        connector.endpoint("client").invoke(Invocation("echo", ("x",)))
        assert trace == ["before", "after"]

    def test_observers_see_phases_and_errors(self):
        connector = direct_connector()
        events = []
        connector.observers.append(
            lambda phase, role, inv, payload: events.append((phase, role))
        )
        with pytest.raises(ConnectorError):
            connector.endpoint("client").invoke(Invocation("echo", ("x",)))
        assert events == [("before", "client"), ("error", "client")]
        assert connector.stats.errors == 1

    def test_disabled_connector_rejects_traffic(self):
        connector = direct_connector()
        connector.attach("server", make_echo().provided_port("svc"))
        connector.enabled = False
        with pytest.raises(ConnectorError):
            connector.endpoint("client").invoke(Invocation("echo", ("x",)))

    def test_describe(self):
        connector = direct_connector()
        connector.attach("server", make_echo("server").provided_port("svc"))
        connector.endpoint("client").invoke(Invocation("echo", ("x",)))
        info = connector.describe()
        assert info["kind"] == "direct"
        assert info["roles"]["server"]["attachments"] == ["server.svc"]
        assert info["invocations"] == 1

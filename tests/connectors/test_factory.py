"""Unit tests for the connector factory and protocol verification."""

import pytest

from repro.errors import ConnectorError, IncompatibleProtocolError
from repro.kernel import Invocation
from repro.lts import Lts
from repro.connectors import (
    Connector,
    ConnectorFactory,
    ConnectorSpec,
    broadcast_glue,
    callee,
    caller,
    pipeline_glue,
    pipeline_stage_protocol,
    rpc_client_protocol,
    rpc_glue,
    rpc_server_protocol,
    subscriber_protocol,
    verify_glue,
)

from tests.helpers import echo_interface, make_echo


class TestProtocolModels:
    def test_rpc_glue_compatible_with_wellbehaved_roles(self):
        report = verify_glue(rpc_glue(), [rpc_client_protocol(), rpc_server_protocol()])
        assert report.deadlock_free

    def test_rpc_glue_detects_misbehaving_client(self):
        # A client that fires two calls before awaiting a return.
        impatient = Lts.cycle("impatient", ["call", "call", "return"])
        report = verify_glue(rpc_glue(), [impatient, rpc_server_protocol()])
        assert not report.deadlock_free

    def test_pipeline_glue_compatible(self):
        glue = pipeline_glue(3)
        roles = [pipeline_stage_protocol(i) for i in range(3)]
        assert verify_glue(glue, roles).deadlock_free

    def test_broadcast_glue_compatible(self):
        glue = broadcast_glue(2)
        roles = [subscriber_protocol(i) for i in range(2)]
        assert verify_glue(glue, roles).deadlock_free

    def test_broadcast_glue_detects_oneshot_subscriber(self):
        # Subscriber 0 accepts a single delivery and then refuses all
        # further ones, wedging the glue on the second publish round.
        oneshot = Lts.sequence("oneshot", ["deliver0"])
        report = verify_glue(broadcast_glue(2), [oneshot, subscriber_protocol(1)])
        assert not report.deadlock_free
        assert report.witness_trace[:2] == ["publish", "deliver0"]


class TestFactory:
    def test_builtin_kinds_available(self):
        factory = ConnectorFactory()
        assert set(factory.kinds()) >= {
            "rpc", "broadcast", "event-bus", "pipeline", "load-balancer", "failover",
        }

    def test_create_rpc(self):
        factory = ConnectorFactory()
        connector = factory.create(
            ConnectorSpec("c1", "rpc", echo_interface(), options={"retries": 1})
        )
        assert connector.kind == "rpc"
        assert connector.retries == 1
        assert factory.built == ["c1"]

    def test_unknown_kind_rejected(self):
        factory = ConnectorFactory()
        with pytest.raises(ConnectorError, match="unknown connector kind"):
            factory.create(ConnectorSpec("c", "quantum", echo_interface()))

    def test_custom_kind_registration(self):
        factory = ConnectorFactory()

        def build(name, interface, options):
            return Connector(name, [
                caller("in", interface, many=True),
                callee("out", interface),
            ])

        factory.register_kind("custom", build)
        connector = factory.create(
            ConnectorSpec("c", "custom", echo_interface(), verify_protocols=False)
        )
        assert connector.name == "c"
        with pytest.raises(ConnectorError):
            factory.register_kind("custom", build)

    def test_protocol_verification_rejects_bad_glue(self):
        factory = ConnectorFactory()
        broken_client = Lts.cycle("broken", ["call", "call", "return"])
        spec = ConnectorSpec(
            "bad", "rpc", echo_interface(),
            options={"protocols": (rpc_glue(), [broken_client, rpc_server_protocol()])},
        )
        with pytest.raises(IncompatibleProtocolError):
            factory.create(spec)

    def test_verification_can_be_skipped(self):
        factory = ConnectorFactory()
        broken_client = Lts.cycle("broken", ["call", "call", "return"])
        spec = ConnectorSpec(
            "tolerated", "rpc", echo_interface(),
            options={"protocols": (rpc_glue(), [broken_client])},
            verify_protocols=False,
        )
        assert factory.create(spec).name == "tolerated"

    def test_aspect_weaving(self):
        factory = ConnectorFactory()
        log = []

        def make_logging_aspect(options):
            def aspect(invocation, proceed):
                log.append(invocation.operation)
                return proceed(invocation)
            return aspect

        factory.register_aspect("call-log", make_logging_aspect)
        connector = factory.create(
            ConnectorSpec("c", "rpc", echo_interface(), aspects=("call-log",))
        )
        connector.attach("server", make_echo("srv").provided_port("svc"))
        connector.endpoint("client").invoke(Invocation("echo", ("x",)))
        assert log == ["echo"]

    def test_unknown_aspect_rejected(self):
        factory = ConnectorFactory()
        with pytest.raises(ConnectorError, match="unknown aspect"):
            factory.create(
                ConnectorSpec("c", "rpc", echo_interface(), aspects=("ghost",))
            )

    def test_duplicate_aspect_registration_rejected(self):
        factory = ConnectorFactory()
        factory.register_aspect("a", lambda options: lambda inv, proceed: proceed(inv))
        with pytest.raises(ConnectorError):
            factory.register_aspect("a", lambda options: lambda inv, proceed: proceed(inv))

    def test_load_balancer_options_flow_through(self):
        factory = ConnectorFactory()
        connector = factory.create(
            ConnectorSpec("lb", "load-balancer", echo_interface(),
                          options={"policy": "least_busy", "seed": 9})
        )
        assert connector.policy == "least_busy"

"""Deterministic exponential backoff in the RPC retry connector."""

import pytest

from repro.connectors import RpcConnector
from repro.kernel import Invocation

from tests.helpers import echo_interface, make_flaky


def call(connector, operation, *args):
    invocation = Invocation(operation, args)
    result = connector.endpoint("client").invoke(invocation)
    return result, invocation


def backoff_rpc(seed=0, retries=3, **overrides):
    kwargs = dict(backoff_base=0.0001, backoff_factor=2.0,
                  backoff_max=0.001, backoff_jitter=0.1, seed=seed)
    kwargs.update(overrides)
    rpc = RpcConnector("rpc", echo_interface(), retries=retries, **kwargs)
    rpc.attach("server", make_flaky("flaky", failures=2).provided_port("svc"))
    return rpc


class TestDefaultBehaviour:
    def test_zero_base_retries_immediately(self):
        rpc = RpcConnector("rpc", echo_interface(), retries=2)
        rpc.attach("server",
                   make_flaky("flaky", failures=2).provided_port("svc"))
        result, invocation = call(rpc, "echo", "x")
        assert result == "flaky:x"
        assert invocation.meta["attempts"] == 2
        assert invocation.meta["backoff"] == [0.0, 0.0]

    def test_exhausted_retries_reraise_with_schedule(self):
        rpc = RpcConnector("rpc", echo_interface(), retries=1,
                           backoff_base=0.0001, backoff_max=0.001)
        rpc.attach("server",
                   make_flaky("dead", failures=9).provided_port("svc"))
        invocation = Invocation("echo", ("x",))
        with pytest.raises(RuntimeError):
            rpc.endpoint("client").invoke(invocation)
        assert invocation.meta["attempts"] == 2
        assert len(invocation.meta["backoff"]) == 1


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        _result, first = call(backoff_rpc(seed=4), "echo", "x")
        _result, second = call(backoff_rpc(seed=4), "echo", "x")
        assert first.meta["backoff"] == second.meta["backoff"]
        assert len(first.meta["backoff"]) == 2

    def test_different_seed_different_schedule(self):
        _result, first = call(backoff_rpc(seed=4), "echo", "x")
        _result, second = call(backoff_rpc(seed=5), "echo", "x")
        assert first.meta["backoff"] != second.meta["backoff"]

    def test_successive_calls_draw_independent_streams(self):
        rpc = RpcConnector("rpc", echo_interface(),
                           backoff_base=1.0, backoff_factor=1.0,
                           backoff_max=10.0, backoff_jitter=0.5, seed=1)
        assert rpc.backoff(0, 0) != rpc.backoff(1, 0)


class TestShape:
    def test_exponential_growth_capped(self):
        rpc = RpcConnector("rpc", echo_interface(), retries=3,
                           backoff_base=0.0001, backoff_factor=2.0,
                           backoff_max=0.0002, backoff_jitter=0.0)
        assert [rpc.backoff(0, a) for a in range(3)] \
            == [0.0001, 0.0002, 0.0002]

    def test_jitter_bounded(self):
        rpc = RpcConnector("rpc", echo_interface(), retries=1,
                           backoff_base=1.0, backoff_factor=1.0,
                           backoff_max=10.0, backoff_jitter=0.25, seed=8)
        delay = rpc.backoff(0, 0)
        assert 1.0 <= delay <= 1.25

"""Unit tests for ADL instance descriptor blocks."""

import pytest

from repro.adl import build_architecture, parse_adl, validate_document
from repro.errors import AdlSyntaxError, DeploymentError
from repro.events import Simulator
from repro.netsim import star

SOURCE = """
interface Work { operation run(job) }
component Worker { provides svc : Work }
architecture App {
  instance heavy : Worker on leaf0 {
    cpu 40
    services logging metering
    separate light
  }
  instance light : Worker on leaf1 {
    cpu 5
  }
}
"""


class WorkerImpl:
    def run(self, job):
        return job


def implementations():
    return {"Worker": lambda name: WorkerImpl()}


class TestParsing:
    def test_descriptor_block_parsed(self):
        document = parse_adl(SOURCE)
        heavy = document.architectures["App"].instances[0]
        assert heavy.cpu == 40.0
        assert heavy.services == ("logging", "metering")
        assert heavy.separate_from == ("light",)
        light = document.architectures["App"].instances[1]
        assert light.cpu == 5.0
        assert light.services == ()

    def test_descriptor_block_optional(self):
        source = """
        interface I { }
        component C { provides p : I }
        architecture A { instance c : C on n0 }
        """
        document = parse_adl(source)
        assert document.architectures["A"].instances[0].cpu == 0.0

    def test_bad_descriptor_keyword_rejected(self):
        source = SOURCE.replace("cpu 40", "memory 40")
        with pytest.raises(AdlSyntaxError):
            parse_adl(source)

    def test_cpu_needs_number(self):
        source = SOURCE.replace("cpu 40", "cpu lots")
        with pytest.raises(AdlSyntaxError):
            parse_adl(source)

    def test_colocate_parsed(self):
        source = SOURCE.replace("separate light", "colocate light")
        document = parse_adl(source)
        heavy = document.architectures["App"].instances[0]
        assert heavy.colocate_with == ("light",)


class TestValidation:
    def test_unknown_service_flagged(self):
        source = SOURCE.replace("services logging metering",
                                "services teleport")
        problems = validate_document(parse_adl(source))
        assert any("unknown container services" in p for p in problems)

    def test_unknown_placement_peer_flagged(self):
        source = SOURCE.replace("separate light", "separate ghost")
        problems = validate_document(parse_adl(source))
        assert any("unknown instance 'ghost'" in p for p in problems)

    def test_good_document_validates(self):
        assert validate_document(parse_adl(SOURCE)) == []


class TestBuild:
    def test_descriptor_applied_on_deploy(self):
        sim = Simulator()
        network = star(sim, leaves=2)
        assembly = build_architecture(parse_adl(SOURCE), "App", network,
                                      implementations())
        node = network.node("leaf0")
        assert node.reserved == 40.0
        heavy = assembly.component("heavy")
        # Container services installed: logging + metering on the port.
        assert len(heavy.provided_port("svc").interceptors) == 2

    def test_separation_enforced_at_build(self):
        source = SOURCE.replace("on leaf1", "on leaf0")  # both on leaf0
        sim = Simulator()
        network = star(sim, leaves=2)
        with pytest.raises(DeploymentError, match="must not share"):
            build_architecture(parse_adl(source), "App", network,
                               implementations())

    def test_colocation_enforced_at_build(self):
        source = SOURCE.replace("separate light", "colocate light")
        # heavy on leaf0 demands colocation with light (deployed later on
        # leaf1): the container rejects the violation when light lands.
        sim = Simulator()
        network = star(sim, leaves=2)
        # Order matters: light is deployed second, so the check fires on
        # heavy's constraint at heavy's deploy time only if light exists.
        # Reverse the declaration order to exercise the check.
        reordered = """
        interface Work { operation run(job) }
        component Worker { provides svc : Work }
        architecture App {
          instance light : Worker on leaf1 { cpu 5 }
          instance heavy : Worker on leaf0 {
            cpu 40
            colocate light
          }
        }
        """
        with pytest.raises(DeploymentError, match="must colocate"):
            build_architecture(parse_adl(reordered), "App", network,
                               implementations())

"""Unit tests for ADL pretty-printing and assembly export."""

import pytest

from repro.adl import (
    build_architecture,
    export_assembly,
    parse_adl,
    print_document,
    validate_document,
)
from repro.events import Simulator
from repro.netsim import star

SOURCE = """
interface Counter version 1.0 {
  operation increment(amount?)
  operation total()
}

component Server {
  provides svc : Counter 1.0
  behaviour {
    init s0
    s0 -> s0 : increment
    s0 -> s0 : total
    final s0
  }
}

component Client { requires peer : Counter 1.0 }

connector Front kind load-balancer interface Counter 1.0 {
  option policy = "round_robin"
  option seed = 7
}

architecture App {
  instance client : Client on leaf0
  instance server : Server on leaf1 {
    cpu 10
    services logging
  }
  use lb : Front
  bind client.peer -> lb.client
  attach server.svc -> lb.worker
}
"""


def structure(document):
    """A comparable structural digest of a document."""
    return {
        "interfaces": {
            name: [(op.name, op.params, op.optional)
                   for op in decl.operations]
            for name, decl in document.interfaces.items()
        },
        "components": {
            name: (
                [(p.kind, p.name, p.interface, p.version)
                 for p in decl.ports],
                None if decl.behaviour is None else (
                    decl.behaviour.initial,
                    sorted((t.source, t.action, t.target)
                           for t in decl.behaviour.transitions),
                    sorted(decl.behaviour.final_states),
                ),
            )
            for name, decl in document.components.items()
        },
        "connectors": {
            name: (decl.kind, decl.interface, decl.version,
                   sorted(decl.options))
            for name, decl in document.connectors.items()
        },
        "architectures": {
            name: (
                [(i.name, i.type_name, i.node, i.cpu, i.services,
                  i.colocate_with, i.separate_from)
                 for i in decl.instances],
                [(u.name, u.connector_type) for u in decl.connectors],
                [(b.source_instance, b.source_port, b.target_instance,
                  b.target_port) for b in decl.binds],
                [(a.component_instance, a.component_port,
                  a.connector_instance, a.role) for a in decl.attaches],
            )
            for name, decl in document.architectures.items()
        },
    }


class TestRoundTrip:
    def test_print_parse_roundtrip_preserves_structure(self):
        original = parse_adl(SOURCE)
        printed = print_document(original)
        reparsed = parse_adl(printed)
        assert structure(original) == structure(reparsed)

    def test_printed_document_validates(self):
        printed = print_document(parse_adl(SOURCE))
        assert validate_document(parse_adl(printed)) == []

    def test_idempotent_printing(self):
        once = print_document(parse_adl(SOURCE))
        twice = print_document(parse_adl(once))
        assert once == twice


class TestExportAssembly:
    def build(self):
        class ServerImpl:
            def increment(self, amount=1):
                return amount

            def total(self):
                return 0

        sim = Simulator()
        network = star(sim, leaves=2)
        assembly = build_architecture(
            parse_adl(SOURCE), "App", network,
            {"Client": lambda name: object(),
             "Server": lambda name: ServerImpl()},
        )
        return assembly

    def test_exported_source_parses_and_validates(self):
        assembly = self.build()
        exported = export_assembly(assembly)
        document = parse_adl(exported)
        assert validate_document(document) == []
        assert "App" in document.architectures

    def test_export_reflects_live_wiring(self):
        assembly = self.build()
        exported = export_assembly(assembly)
        document = parse_adl(exported)
        app = document.architectures["App"]
        assert {i.name for i in app.instances} == {"client", "server"}
        assert [u.name for u in app.connectors] == ["lb"]
        assert app.binds[0].target_instance == "lb"
        assert app.attaches[0].component_instance == "server"

    def test_export_carries_behaviour(self):
        assembly = self.build()
        document = parse_adl(export_assembly(assembly))
        server_type = next(
            decl for name, decl in document.components.items()
            if "server" in name
        )
        assert server_type.behaviour is not None
        actions = {t.action for t in server_type.behaviour.transitions}
        assert actions == {"increment", "total"}

    def test_export_tracks_reconfiguration(self):
        from repro.reconfig import MigrateComponent, ReconfigurationTransaction

        assembly = self.build()
        ReconfigurationTransaction(assembly).add(
            MigrateComponent("server", "hub")
        ).execute()
        document = parse_adl(export_assembly(assembly))
        server = next(i for i in document.architectures["App"].instances
                      if i.name == "server")
        assert server.node == "hub"

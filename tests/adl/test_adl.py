"""Unit tests for the ADL: lexer, parser, validator, builder."""

import pytest

from repro.adl import (
    build_architecture,
    check_document,
    interface_from_decl,
    lts_from_behaviour,
    parse_adl,
    validate_document,
)
from repro.errors import AdlSyntaxError, AdlValidationError
from repro.events import Simulator
from repro.netsim import star

GOOD_SOURCE = """
// A counting service with a load-balanced front.
interface Counter version 1.0 {
  operation increment(amount?)
  operation total()
}

component CounterServer {
  provides svc : Counter 1.0
  behaviour {
    init s0
    s0 -> s0 : increment
    s0 -> s0 : total
    final s0
  }
}

component CounterClient {
  requires peer : Counter 1.0
}

connector Front kind load-balancer interface Counter 1.0 {
  option policy = "round_robin"
  option seed = 7
}

architecture App {
  instance client : CounterClient on leaf0
  instance server1 : CounterServer on leaf1
  instance server2 : CounterServer on leaf2
  use lb : Front
  bind client.peer -> lb.client
  attach server1.svc -> lb.worker
  attach server2.svc -> lb.worker
}
"""


class TestParser:
    def test_parses_all_declarations(self):
        document = parse_adl(GOOD_SOURCE)
        assert set(document.interfaces) == {"Counter"}
        assert set(document.components) == {"CounterServer", "CounterClient"}
        assert set(document.connectors) == {"Front"}
        assert set(document.architectures) == {"App"}

    def test_interface_details(self):
        document = parse_adl(GOOD_SOURCE)
        counter = document.interfaces["Counter"]
        assert counter.version == "1.0"
        increment = counter.operations[0]
        assert increment.name == "increment"
        assert increment.params == ("amount",)
        assert increment.optional == 1

    def test_behaviour_block(self):
        document = parse_adl(GOOD_SOURCE)
        behaviour = document.components["CounterServer"].behaviour
        assert behaviour.initial == "s0"
        assert behaviour.final_states == ("s0",)
        assert len(behaviour.transitions) == 2

    def test_connector_options(self):
        document = parse_adl(GOOD_SOURCE)
        options = dict(document.connectors["Front"].options)
        assert options == {"policy": "round_robin", "seed": 7}

    def test_architecture_details(self):
        document = parse_adl(GOOD_SOURCE)
        app = document.architectures["App"]
        assert len(app.instances) == 3
        assert app.instances[0].node == "leaf0"
        assert len(app.binds) == 1
        assert app.binds[0].target_instance == "lb"
        assert len(app.attaches) == 2

    def test_comments_ignored(self):
        document = parse_adl("# hash comment\ninterface I { }\n// slash\n")
        assert "I" in document.interfaces

    def test_syntax_error_reports_location(self):
        with pytest.raises(AdlSyntaxError) as error:
            parse_adl("interface {")
        assert "line" in str(error.value)

    def test_unexpected_character(self):
        with pytest.raises(AdlSyntaxError):
            parse_adl("interface I @ {}")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(AdlSyntaxError, match="duplicate"):
            parse_adl("interface I { }\ninterface I { }")

    def test_required_after_optional_param_rejected(self):
        with pytest.raises(AdlSyntaxError):
            parse_adl("interface I { operation f(a?, b) }")


class TestValidator:
    def test_good_document_validates(self):
        assert validate_document(parse_adl(GOOD_SOURCE)) == []

    def test_unknown_interface_in_port(self):
        source = "component C { provides svc : Ghost }"
        problems = validate_document(parse_adl(source))
        assert any("unknown interface" in p for p in problems)

    def test_duplicate_port(self):
        source = """
        interface I { }
        component C { provides p : I  provides p : I }
        """
        problems = validate_document(parse_adl(source))
        assert any("duplicate port" in p for p in problems)

    def test_behaviour_action_must_be_provided(self):
        source = """
        interface I { operation f() }
        component C {
          provides svc : I
          behaviour { s0 -> s0 : ghost_op }
        }
        """
        problems = validate_document(parse_adl(source))
        assert any("ghost_op" in p for p in problems)

    def test_unknown_connector_kind(self):
        source = """
        interface I { }
        connector X kind quantum interface I
        """
        problems = validate_document(parse_adl(source))
        assert any("unknown kind" in p for p in problems)

    def test_bind_to_missing_port(self):
        source = """
        interface I { operation f() }
        component A { requires r : I }
        component B { provides p : I }
        architecture App {
          instance a : A on n0
          instance b : B on n0
          bind a.r -> b.ghost
        }
        """
        problems = validate_document(parse_adl(source))
        assert any("no provided port" in p for p in problems)

    def test_bind_interface_mismatch(self):
        source = """
        interface I { operation f() }
        interface J { operation g() }
        component A { requires r : I }
        component B { provides p : J }
        architecture App {
          instance a : A on n0
          instance b : B on n0
          bind a.r -> b.p
        }
        """
        problems = validate_document(parse_adl(source))
        assert any("interface mismatch" in p for p in problems)

    def test_bind_to_callee_role_rejected(self):
        source = """
        interface I { operation f() }
        component A { requires r : I }
        connector C kind rpc interface I
        architecture App {
          instance a : A on n0
          use c : C
          bind a.r -> c.server
        }
        """
        problems = validate_document(parse_adl(source))
        assert any("not a caller role" in p for p in problems)

    def test_attach_to_caller_role_rejected(self):
        source = """
        interface I { operation f() }
        component B { provides p : I }
        connector C kind rpc interface I
        architecture App {
          instance b : B on n0
          use c : C
          attach b.p -> c.client
        }
        """
        problems = validate_document(parse_adl(source))
        assert any("not a callee role" in p for p in problems)

    def test_check_document_raises(self):
        with pytest.raises(AdlValidationError):
            check_document(parse_adl("component C { provides p : Ghost }"))


class TestBuilder:
    def implementations(self):
        class ServerImpl:
            def __init__(self):
                self.calls = 0
                self.value = 0

            def increment(self, amount=1):
                self.calls += 1
                self.value += amount
                return self.value

            def total(self):
                return self.value

        servers = {}

        def server_factory(instance_name):
            impl = ServerImpl()
            servers[instance_name] = impl
            return impl

        return {
            "CounterServer": server_factory,
            "CounterClient": lambda name: object(),
        }, servers

    def test_build_produces_running_assembly(self):
        sim = Simulator()
        network = star(sim, leaves=3)
        document = parse_adl(GOOD_SOURCE)
        implementations, servers = self.implementations()
        assembly = build_architecture(document, "App", network,
                                      implementations)
        assert set(assembly.registry.names()) == {"client", "server1",
                                                  "server2"}
        assert assembly.component("server1").node_name == "leaf1"
        assert "lb" in assembly.connectors
        # Round-robin over both servers through the connector.
        client = assembly.component("client")
        for i in range(4):
            client.required_port("peer").call("increment", 1)
        assert servers["server1"].value == 2
        assert servers["server2"].value == 2

    def test_behaviour_becomes_lts(self):
        sim = Simulator()
        network = star(sim, leaves=3)
        implementations, _servers = self.implementations()
        assembly = build_architecture(parse_adl(GOOD_SOURCE), "App", network,
                                      implementations)
        behaviour = assembly.component("server1").behaviour
        assert behaviour is not None
        assert behaviour.successors("s0", "increment") == {"s0"}
        assert "s0" in behaviour.final

    def test_unknown_architecture_rejected(self):
        sim = Simulator()
        network = star(sim, leaves=3)
        implementations, _servers = self.implementations()
        with pytest.raises(AdlValidationError, match="no architecture"):
            build_architecture(parse_adl(GOOD_SOURCE), "Ghost", network,
                               implementations)

    def test_missing_implementation_rejected(self):
        sim = Simulator()
        network = star(sim, leaves=3)
        with pytest.raises(AdlValidationError, match="no implementation"):
            build_architecture(parse_adl(GOOD_SOURCE), "App", network, {})

    def test_invalid_document_rejected_before_build(self):
        source = """
        interface I { operation f() }
        component A { requires r : I }
        architecture App {
          instance a : A on leaf0
          bind a.r -> ghost.p
        }
        """
        sim = Simulator()
        network = star(sim, leaves=1)
        with pytest.raises(AdlValidationError):
            build_architecture(parse_adl(source), "App", network,
                               {"A": lambda name: object()})

    def test_component_factory_may_return_component(self):
        from repro.kernel import Component

        source = """
        interface I { operation f() }
        component A { provides p : I }
        architecture App { instance a : A on leaf0 }
        """

        class CustomComponent(Component):
            def f(self):
                return "custom"

        sim = Simulator()
        network = star(sim, leaves=1)
        assembly = build_architecture(
            parse_adl(source), "App", network,
            {"A": lambda name: CustomComponent(name)},
        )
        from repro.kernel import Invocation

        port = assembly.component("a").provided_port("p")
        assert port.invoke(Invocation("f")) == "custom"

    def test_interface_from_decl(self):
        document = parse_adl(GOOD_SOURCE)
        interface = interface_from_decl(document.interfaces["Counter"])
        assert interface.operation("increment").optional == 1

    def test_lts_from_behaviour(self):
        document = parse_adl(GOOD_SOURCE)
        behaviour = document.components["CounterServer"].behaviour
        lts = lts_from_behaviour("b", behaviour)
        assert lts.initial == "s0"
        assert lts.alphabet == frozenset({"increment", "total"})

"""Partition-from-ADL: the architecture description *is* the sharding
plan — co-located/fast-connected deployment nodes form regions, slow
connectors become the conservative synchronization boundaries."""

import pytest

from repro.adl import parse_adl, partition_from_architecture
from repro.errors import AdlValidationError, NetworkError

GEO_SOURCE = """
interface Ping version 1.0 { operation ping() }

component Svc {
  provides p : Ping 1.0
  requires r : Ping 1.0
}

connector Lan kind rpc interface Ping 1.0 {
  option latency = 0.0005
}
connector Wan kind rpc interface Ping 1.0 {
  option latency = 0.05
  option bandwidth = 500000
}

architecture Geo {
  instance a1 : Svc on siteA_1
  instance a2 : Svc on siteA_2
  instance b1 : Svc on siteB_1
  instance b2 : Svc on siteB_2
  instance c1 : Svc on siteC_1
  use lanA : Lan
  use lanB : Lan
  use wan : Wan
  bind a1.r -> lanA.client
  attach a2.p -> lanA.server
  bind b1.r -> lanB.client
  attach b2.p -> lanB.server
  bind c1.r -> wan.client
  attach a1.p -> wan.server
  attach b1.p -> wan.server
}
"""


@pytest.fixture(scope="module")
def geo_partition():
    return partition_from_architecture(parse_adl(GEO_SOURCE))


class TestRegionAssignment:
    def test_fast_connectors_group_sites_into_regions(self, geo_partition):
        assert geo_partition.regions == 3
        assert geo_partition.region_of("siteA_1") \
            == geo_partition.region_of("siteA_2")
        assert geo_partition.region_of("siteB_1") \
            == geo_partition.region_of("siteB_2")
        assert geo_partition.region_of("siteC_1") \
            != geo_partition.region_of("siteA_1")

    def test_numbering_follows_first_appearance(self, geo_partition):
        assert geo_partition.region_of("siteA_1") == 0
        assert geo_partition.region_of("siteB_1") == 1
        assert geo_partition.region_of("siteC_1") == 2

    def test_wan_becomes_pairwise_boundaries(self, geo_partition):
        # The WAN connector spans all three regions: 3 choose 2 links.
        assert len(geo_partition.boundaries) == 3
        assert all(b.latency == pytest.approx(0.05)
                   for b in geo_partition.boundaries)
        assert all(b.bandwidth == pytest.approx(500_000.0)
                   for b in geo_partition.boundaries)

    def test_lookahead_is_min_declared_wan_latency(self, geo_partition):
        assert geo_partition.lookahead == pytest.approx(0.05)

    def test_partition_validates(self, geo_partition):
        geo_partition.validate()


class TestEdgeSemantics:
    def test_direct_cross_node_bind_merges_regions(self):
        doc = parse_adl("""
        interface I version 1.0 { operation op() }
        component A { requires r : I 1.0 }
        component B { provides p : I 1.0 }
        architecture App {
          instance a : A on n0
          instance b : B on n1
          bind a.r -> b.p
        }
        """)
        partition = partition_from_architecture(doc)
        assert partition.regions == 1
        assert partition.region_of("n0") == partition.region_of("n1")

    def test_threshold_is_tunable(self):
        partition = partition_from_architecture(
            parse_adl(GEO_SOURCE), boundary_threshold=0.2)
        # Raising the threshold swallows the WAN into one region.
        assert partition.regions == 1
        assert partition.boundaries == []

    def test_slow_connector_within_one_region_adds_no_boundary(self):
        doc = parse_adl("""
        interface I version 1.0 { operation op() }
        component A { provides p : I 1.0
                      requires r : I 1.0 }
        connector Slow kind rpc interface I 1.0 {
          option latency = 0.5
        }
        architecture App {
          instance a : A on n0
          instance b : A on n0
          use s : Slow
          bind a.r -> s.client
          attach b.p -> s.server
        }
        """)
        partition = partition_from_architecture(doc)
        assert partition.regions == 1
        assert partition.boundaries == []

    def test_isolated_nodes_become_their_own_regions(self):
        doc = parse_adl("""
        interface I version 1.0 { operation op() }
        component A { provides p : I 1.0 }
        architecture App {
          instance a : A on island0
          instance b : A on island1
        }
        """)
        partition = partition_from_architecture(doc)
        assert partition.regions == 2
        # No boundaries: disconnected regions are the caller's problem;
        # the builder must not invent links the architecture never had.
        assert partition.boundaries == []
        with pytest.raises(NetworkError):
            partition.validate()


class TestErrors:
    def test_unknown_architecture(self):
        with pytest.raises(AdlValidationError):
            partition_from_architecture(parse_adl(GEO_SOURCE), "Nope")

    def test_ambiguous_document_requires_a_name(self):
        doc = parse_adl("""
        interface I version 1.0 { operation op() }
        component A { provides p : I 1.0 }
        architecture One { instance a : A on n0 }
        architecture Two { instance a : A on n0 }
        """)
        with pytest.raises(AdlValidationError):
            partition_from_architecture(doc)
        assert partition_from_architecture(doc, "One").regions == 1

    def test_empty_architecture_rejected(self):
        doc = parse_adl("""
        architecture Empty { }
        """)
        with pytest.raises(AdlValidationError):
            partition_from_architecture(doc)

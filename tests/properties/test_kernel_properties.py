"""Property-based tests for kernel invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.kernel import Component, Interface, Operation, Version, bind

from tests.helpers import CounterComponent, counter_interface


versions = st.builds(Version, st.integers(0, 5), st.integers(0, 5))


class TestVersionProperties:
    @given(versions)
    def test_compatibility_reflexive(self, version):
        assert version.compatible_with(version)

    @given(versions, versions, versions)
    def test_compatibility_transitive(self, a, b, c):
        if a.compatible_with(b) and b.compatible_with(c):
            assert a.compatible_with(c)

    @given(versions, versions)
    def test_compatibility_antisymmetric_within_major(self, a, b):
        if a.compatible_with(b) and b.compatible_with(a):
            assert a == b

    @given(versions)
    def test_minor_bump_stays_compatible(self, version):
        assert version.bump_minor().compatible_with(version)

    @given(versions)
    def test_major_bump_breaks_compatibility(self, version):
        assert not version.bump_major().compatible_with(version)

    @given(versions, versions)
    def test_ordering_total(self, a, b):
        assert (a < b) or (b < a) or (a == b)


names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
param_lists = st.lists(
    st.sampled_from(["x", "y", "z", "w"]), max_size=4, unique=True
)


class TestOperationProperties:
    @given(names, param_lists, st.integers(0, 4))
    def test_extends_reflexive(self, name, params, optional):
        optional = min(optional, len(params))
        operation = Operation(name, tuple(params), optional)
        assert operation.extends(operation)

    @given(names, param_lists, st.integers(0, 4))
    def test_adding_optional_param_extends(self, name, params, optional):
        optional = min(optional, len(params))
        base = Operation(name, tuple(params), optional)
        extended = Operation(
            name, tuple(params) + ("extra_param",), optional + 1
        )
        assert extended.extends(base)

    @given(names, param_lists, st.integers(0, 4))
    def test_extends_accepts_every_legal_call(self, name, params, optional):
        # If new extends old, every arity the old operation accepted must
        # be accepted by the new one.
        optional = min(optional, len(params))
        old = Operation(name, tuple(params), optional)
        new = Operation(name, tuple(params) + ("p9",), optional + 1)
        assert new.extends(old)
        for arity in range(old.min_arity, old.max_arity + 1):
            assert new.accepts_arity(arity)


class TestInterfaceEvolutionProperties:
    @given(st.lists(st.sampled_from(["f", "g", "h", "k"]), min_size=1,
                    max_size=4, unique=True))
    def test_evolution_chain_stays_compatible(self, new_ops):
        interface = Interface("I", "1.0", [Operation("base", ("a",))])
        history = [interface]
        for op_name in new_ops:
            interface = interface.evolve(add=[Operation(op_name, ())])
            history.append(interface)
        # Every newer version satisfies every older one (compat is
        # preserved along the whole minor-version chain).
        for older in history[:-1]:
            assert history[-1].satisfies(older)


class TestBindingBufferProperties:
    @given(st.lists(st.integers(1, 10), min_size=0, max_size=30),
           st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_no_loss_no_duplication_no_reorder(self, amounts, cycles):
        """The paper's channel-preservation guarantee under arbitrary
        block/unblock cycles and traffic patterns."""
        client = Component("client")
        client.require("peer", counter_interface())
        client.activate()
        server = CounterComponent("server")
        server.provide("svc", counter_interface())
        server.activate()
        binding = bind(client.required_port("peer"),
                       server.provided_port("svc"))
        results = []
        cursor = 0
        per_cycle = max(1, len(amounts) // cycles)
        for cycle in range(cycles):
            binding.block()
            chunk = amounts[cursor:cursor + per_cycle]
            cursor += per_cycle
            for amount in chunk:
                client.required_port("peer").call_async(
                    "increment", amount, on_result=results.append
                )
            binding.unblock()
        for amount in amounts[cursor:]:
            client.required_port("peer").call_async(
                "increment", amount, on_result=results.append
            )
        # No loss, no duplication: final total is the exact sum.
        assert server.state["total"] == sum(amounts)
        # No reorder: results are the running prefix sums.
        expected, running = [], 0
        for amount in amounts:
            running += amount
            expected.append(running)
        assert results == expected

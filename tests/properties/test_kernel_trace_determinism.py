"""Kernel-level determinism: same seed ⇒ byte-identical event traces.

The whole benchmark suite rests on the event kernel interleaving
identically across runs.  These properties drive the kernel through
randomised programs — one-shot schedules, ``call_soon`` ties, priority
ties, cancellations, bulk inserts and jittered periodic timers — and
require the recorded traces of two independent runs to match byte for
byte (not merely compare equal).
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events import PeriodicTimer, Simulator


def _random_program_trace(seed: int) -> bytes:
    """Run a randomised scheduling program and serialise its event trace."""
    rng = random.Random(seed)
    sim = Simulator()
    trace: list[tuple[float, str]] = []

    def note(label: str) -> None:
        trace.append((sim.now, label))

    cancellable = []
    # A pile of one-shots, many sharing timestamps and priorities so tie
    # order is exercised.
    for index in range(rng.randint(20, 60)):
        delay = rng.choice([0.0, 0.5, 1.0, rng.uniform(0.0, 5.0)])
        priority = rng.choice([-1, 0, 0, 1])
        event = sim.schedule(note, f"one-shot:{index}", priority=priority, delay=delay)
        if rng.random() < 0.4:
            cancellable.append(event)
    # A bulk batch through the heapify fast path.
    sim.schedule_many(
        [
            (rng.uniform(0.0, 5.0), note, (f"bulk:{index}",))
            for index in range(rng.randint(5, 30))
        ]
    )
    # Jittered periodic timers (their rng draws are part of the program).
    timers = [
        PeriodicTimer(
            sim,
            rng.uniform(0.3, 1.5),
            note,
            f"tick:{index}",
            jitter=0.1,
            rng=random.Random(seed * 31 + index),
        )
        for index in range(rng.randint(1, 3))
    ]
    # Cancel a random subset before and during the run.
    for event in cancellable[::2]:
        event.cancel()
    if cancellable[1::2]:
        victims = cancellable[1::2]
        sim.schedule(lambda: [event.cancel() for event in victims], delay=1.0)
    # Same-time ties via call_soon chains scheduled mid-run.
    sim.schedule(lambda: [sim.call_soon(note, f"soon:{i}") for i in range(3)], delay=2.0)
    stop_at = rng.uniform(3.0, 8.0)
    sim.at(lambda: [timer.stop() for timer in timers], when=stop_at)
    sim.run(until=stop_at + 1.0)
    return repr(trace).encode()


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_event_trace_byte_identical_per_seed(seed):
    assert _random_program_trace(seed) == _random_program_trace(seed)


@given(st.integers(0, 100_000))
@settings(max_examples=20, deadline=None)
def test_counters_and_clock_identical_per_seed(seed):
    def run():
        rng = random.Random(seed)
        sim = Simulator()
        events = [
            sim.schedule(lambda: None, delay=rng.uniform(0.0, 10.0))
            for _ in range(rng.randint(50, 200))
        ]
        for event in events:
            if rng.random() < 0.5:
                event.cancel()
        sim.run(until=5.0)
        return (
            sim.now,
            sim.executed_events,
            sim.pending_events,
            sim.queue_size,
            sim.compactions,
        )

    assert run() == run()

"""Property-based tests for engines: rules, metrics, paths, control,
reconfiguration rollback."""

import hypothesis.strategies as st
import networkx as nx
from hypothesis import given, settings

from repro.control import PidController
from repro.paths import PathFamily, PathPlanner, ServiceOption
from repro.qos import MetricSeries
from repro.rules import CallAction, CallPattern, Rule, RuleOperator, is_acyclic


# ---------------------------------------------------------------------------
# Rule cycle detection vs a networkx oracle
# ---------------------------------------------------------------------------

nodes = st.sampled_from([f"c{i}.op" for i in range(5)])


@given(st.lists(st.tuples(nodes, nodes), min_size=1, max_size=10))
@settings(max_examples=80, deadline=None)
def test_cycle_detection_matches_graph_oracle(edges):
    rules = [
        Rule(f"r{i}", CallPattern.parse(trigger), RuleOperator.IMPLIES,
             action=CallAction.parse(action))
        for i, (trigger, action) in enumerate(edges)
    ]
    oracle = nx.DiGraph()
    oracle.add_edges_from(edges)
    oracle_acyclic = nx.is_directed_acyclic_graph(oracle)
    assert is_acyclic(rules) == oracle_acyclic


# ---------------------------------------------------------------------------
# Metric series invariants
# ---------------------------------------------------------------------------

samples = st.lists(
    st.tuples(st.floats(0.0, 100.0), st.floats(-1000.0, 1000.0)),
    min_size=1, max_size=50,
)


@given(samples, st.floats(0.5, 20.0))
@settings(max_examples=80, deadline=None)
def test_metric_statistics_within_window_bounds(raw, window):
    series = MetricSeries("m", window=window)
    ordered = sorted(raw, key=lambda pair: pair[0])
    for time, value in ordered:
        series.record(value, now=time)
    if series.empty:
        return
    live = list(series.values())
    slack = 1e-9 * max(1.0, max(abs(v) for v in live))  # float rounding
    assert series.minimum() == min(live)
    assert series.maximum() == max(live)
    assert min(live) - slack <= series.mean() <= max(live) + slack
    for q in (0, 50, 95, 100):
        assert min(live) - slack <= series.percentile(q) <= max(live) + slack


@given(samples)
@settings(max_examples=60, deadline=None)
def test_percentiles_are_monotone_in_q(raw):
    series = MetricSeries("m", window=1000.0)
    for time, value in sorted(raw, key=lambda pair: pair[0]):
        series.record(value, now=time)
    quantiles = [series.percentile(q) for q in (0, 25, 50, 75, 95, 100)]
    assert quantiles == sorted(quantiles)


# ---------------------------------------------------------------------------
# Path planner optimality vs exhaustive enumeration
# ---------------------------------------------------------------------------

@st.composite
def random_family(draw):
    stage_count = draw(st.integers(1, 3))
    stages = [f"stage{i}" for i in range(stage_count)]
    family = PathFamily("f", stages)
    formats = ["x", "y", "*"]
    option_id = 0
    for stage in stages:
        for _ in range(draw(st.integers(1, 3))):
            family.add_option(ServiceOption(
                f"o{option_id}", stage, lambda v: v,
                input_format=draw(st.sampled_from(formats)),
                output_format=draw(st.sampled_from(formats)),
                latency=draw(st.floats(0.1, 10.0)),
                quality=draw(st.floats(0.0, 1.0)),
                bandwidth_required=draw(st.floats(0.0, 5.0)),
            ))
            option_id += 1
    return family


@given(random_family(), st.floats(0.0, 6.0), st.floats(0.0, 3.0))
@settings(max_examples=60, deadline=None)
def test_planner_matches_exhaustive_optimum(family, bandwidth, quality_weight):
    from repro.errors import PathError

    context = {"bandwidth": bandwidth}
    candidates = family.all_paths(context)

    def cost(path):
        return sum(o.latency - quality_weight * o.quality for o in path.options)

    planner = PathPlanner(family, quality_weight=quality_weight)
    if not candidates:
        try:
            planner.plan(context)
            assert False, "planner found a path enumeration missed"
        except PathError:
            return
    best = min(cost(path) for path in candidates)
    planned = planner.plan(context)
    assert cost(planned) <= best + 1e-9


# ---------------------------------------------------------------------------
# PID convergence on monotone first-order plants
# ---------------------------------------------------------------------------

@given(st.floats(0.1, 1.0), st.floats(1.0, 50.0), st.floats(0.05, 0.4))
@settings(max_examples=40, deadline=None)
def test_pid_converges_on_monotone_plant(plant_gain, setpoint, kp_scale):
    pid = PidController(kp=kp_scale / plant_gain, ki=0.1 / plant_gain,
                        setpoint=setpoint)
    value = 0.0
    for step in range(400):
        value += plant_gain * pid.update(value, float(step))
    assert abs(value - setpoint) < 0.05 * max(setpoint, 1.0)


# ---------------------------------------------------------------------------
# Reconfiguration rollback restores the architecture graph
# ---------------------------------------------------------------------------

@given(st.integers(0, 3), st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_rollback_restores_architecture_graph(extra_components, extra_wires):
    import networkx.algorithms.isomorphism as iso
    import pytest

    from repro.errors import ConsistencyError
    from repro.events import Simulator
    from repro.kernel import Assembly
    from repro.netsim import full_mesh
    from repro.reconfig import (
        AddComponent,
        ReconfigurationTransaction,
        RemoveBinding,
    )
    from tests.helpers import CounterComponent, counter_interface

    sim = Simulator()
    assembly = Assembly(full_mesh(sim, size=4))

    def fresh(name, with_requirement=False):
        component = CounterComponent(name)
        component.provide("svc", counter_interface())
        if with_requirement:
            component.require("peer", counter_interface())
        return component

    assembly.deploy(fresh("client", with_requirement=True), "n0")
    assembly.deploy(fresh("server"), "n1")
    assembly.connect("client", "peer", target_component="server")
    for index in range(extra_components):
        assembly.deploy(fresh(f"extra{index}"), f"n{index % 4}")

    before = assembly.architecture_graph()

    txn = ReconfigurationTransaction(assembly)
    for index in range(extra_wires + 1):
        txn.add(AddComponent(fresh(f"new{index}"), "n2"))
    txn.add(RemoveBinding("client", "peer"))  # guarantees a violation

    with pytest.raises(ConsistencyError):
        txn.execute()

    after = assembly.architecture_graph()
    matcher = iso.DiGraphMatcher(before, after)
    assert set(before.nodes) == set(after.nodes)
    assert set(before.edges) == set(after.edges)

"""Property-based tests for composition-filter sequencing laws."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.filters import (
    FilterSet,
    PassFilter,
    StopFilter,
    TransformFilter,
    match,
)
from repro.kernel import Invocation

from tests.helpers import make_counter


def add_filter(constant):
    return TransformFilter(
        f"add{constant}",
        lambda inv, c=constant: Invocation("increment", (inv.args[0] + c,)),
        match("increment"),
    )


def mul_filter(constant):
    return TransformFilter(
        f"mul{constant}",
        lambda inv, c=constant: Invocation("increment", (inv.args[0] * c,)),
        match("increment"),
    )


transform_specs = st.lists(
    st.tuples(st.sampled_from(["add", "mul"]), st.integers(1, 5)),
    min_size=0, max_size=6,
)


def build_filters(specs):
    filters = []
    for index, (kind, constant) in enumerate(specs):
        base = add_filter(constant) if kind == "add" else mul_filter(constant)
        base.name = f"{kind}{constant}-{index}"  # unique names
        filters.append(base)
    return filters


def apply_specs(value, specs):
    for kind, constant in specs:
        value = value + constant if kind == "add" else value * constant
    return value


@given(transform_specs, st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_filter_stack_equals_function_composition(specs, start):
    """A stack of transform filters behaves as left-to-right function
    composition over the message content."""
    component = make_counter()
    port = component.provided_port("svc")
    FilterSet("stack", build_filters(specs)).attach_to(port)
    result = port.invoke(Invocation("increment", (start,)))
    assert result == apply_specs(start, specs)


@given(transform_specs, st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_attach_detach_is_identity(specs, start):
    """Attaching then detaching a filter set leaves behaviour unchanged."""
    component = make_counter()
    port = component.provided_port("svc")
    filter_set = FilterSet("stack", build_filters(specs))
    filter_set.attach_to(port)
    filter_set.detach_from(port)
    result = port.invoke(Invocation("increment", (start,)))
    assert result == start
    assert component.state["total"] == start


@given(transform_specs)
@settings(max_examples=60, deadline=None)
def test_pass_filters_are_neutral(specs):
    """Interleaving Pass filters anywhere never changes the outcome."""
    component_plain = make_counter("plain")
    component_padded = make_counter("padded")
    FilterSet("plain", build_filters(specs)).attach_to(
        component_plain.provided_port("svc"))
    padded = []
    for index, filter_ in enumerate(build_filters(specs)):
        padded.append(PassFilter(f"noop-{index}"))
        padded.append(filter_)
    padded.append(PassFilter("noop-tail"))
    FilterSet("padded", padded).attach_to(
        component_padded.provided_port("svc"))

    plain = component_plain.provided_port("svc").invoke(
        Invocation("increment", (7,)))
    with_padding = component_padded.provided_port("svc").invoke(
        Invocation("increment", (7,)))
    assert plain == with_padding


@given(transform_specs, st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_stop_filter_short_circuits_everything_after_it(specs, position):
    """A Stop filter absorbs the message: later filters and the
    implementation never run."""
    component = make_counter()
    port = component.provided_port("svc")
    filters = build_filters(specs)
    position = min(position, len(filters))
    filters.insert(position, StopFilter("stop", match("increment"),
                                        result="stopped"))
    FilterSet("stack", filters).attach_to(port)
    assert port.invoke(Invocation("increment", (1,))) == "stopped"
    assert component.state["total"] == 0
    for filter_ in filters[position + 1:]:
        assert filter_.match_count == 0

"""Property-based tests for the LTS algebra."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lts import (
    Lts,
    bisimilar,
    compose,
    find_deadlocks,
    minimize,
    simulates,
    trace_refines,
    traces,
)

actions = st.sampled_from(["a", "b", "c", "d"])
states = st.sampled_from([f"s{i}" for i in range(5)])


@st.composite
def random_lts(draw, name="L"):
    triples = draw(st.lists(st.tuples(states, actions, states),
                            min_size=1, max_size=12))
    initial = triples[0][0]
    lts = Lts(name, initial=initial)
    for source, action, target in triples:
        lts.add_transition(source, action, target)
    final_candidates = sorted(lts.states)
    finals = draw(st.lists(st.sampled_from(final_candidates), max_size=3))
    lts.mark_final(*finals)
    return lts


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_pruned_is_bisimilar_to_original(lts):
    assert bisimilar(lts, lts.pruned())


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_minimize_preserves_bisimilarity(lts):
    small = minimize(lts)
    assert bisimilar(lts, small)
    assert len(small.states) <= len(lts.pruned().states)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_minimize_is_idempotent_in_size(lts):
    once = minimize(lts)
    twice = minimize(once)
    assert len(twice.states) == len(once.states)


@given(random_lts())
@settings(max_examples=40, deadline=None)
def test_self_composition_preserves_deadlock_freedom_shape(lts):
    # L || L over identical alphabets moves in lockstep; its states map
    # onto pairs, and its traces are included in L's traces.
    composite = compose([lts, lts])
    assert traces(composite, max_length=4) <= traces(lts, max_length=4)


@given(random_lts(), random_lts())
@settings(max_examples=40, deadline=None)
def test_composition_is_commutative_up_to_traces(a, b):
    b2 = b.renamed({})  # structural copy
    left = compose([a, b])
    right = compose([b2, a])
    assert traces(left, max_length=4) == traces(right, max_length=4)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_simulation_is_reflexive(lts):
    assert simulates(lts, lts)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_trace_refinement_is_reflexive(lts):
    assert trace_refines(lts, lts, max_length=4)


@given(random_lts())
@settings(max_examples=40, deadline=None)
def test_simulation_implies_trace_refinement(lts):
    # Build an "abstract" version by adding behaviour (extra loop at the
    # initial state): abstract simulates concrete, so traces refine.
    abstract = lts.pruned()
    abstract.add_transition(abstract.initial, "extra", abstract.initial)
    if simulates(abstract, lts):
        assert trace_refines(abstract, lts, max_length=4)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_deadlock_witness_is_reproducible(lts):
    report = find_deadlocks(lts)
    if not report.deadlock_free:
        # Follow the witness from the initial state; it must end in one
        # of the reported deadlock states.
        current = {lts.initial}
        for action in report.witness_trace:
            nxt = set()
            for state in current:
                nxt |= lts.successors(state, action)
            current = nxt
            assert current, "witness trace must be executable"
        assert current & set(report.deadlock_states)


@given(random_lts())
@settings(max_examples=60, deadline=None)
def test_hiding_removes_from_alphabet(lts):
    victim = next(iter(lts.alphabet), None)
    if victim is None:
        return
    hidden = lts.hidden([victim])
    assert victim not in hidden.alphabet
    assert hidden.alphabet == lts.alphabet - {victim}

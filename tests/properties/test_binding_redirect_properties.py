"""Property tests: message conservation under arbitrary redirect/block
schedules — "redirecting the calls to new components and managing
transient states" must never lose, duplicate or misroute a call."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.kernel import Component, bind

from tests.helpers import CounterComponent, counter_interface


#: A schedule step: ("send", amount) | ("block",) | ("unblock",)
#: | ("redirect", server_index)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("send"), st.integers(1, 5)),
        st.tuples(st.just("block")),
        st.tuples(st.just("unblock")),
        st.tuples(st.just("redirect"), st.integers(0, 2)),
    ),
    min_size=1, max_size=40,
)


@given(steps)
@settings(max_examples=80, deadline=None)
def test_conservation_under_redirects_and_blocks(schedule):
    client = Component("client")
    client.require("peer", counter_interface())
    client.activate()
    servers = []
    for index in range(3):
        server = CounterComponent(f"s{index}")
        server.provide("svc", counter_interface())
        server.activate()
        servers.append(server)
    binding = bind(client.required_port("peer"),
                   servers[0].provided_port("svc"))

    sent_total = 0
    for step in schedule:
        kind = step[0]
        if kind == "send":
            client.required_port("peer").call_async("increment", step[1])
            sent_total += step[1]
        elif kind == "block":
            if not binding.is_blocked:
                binding.block()
        elif kind == "unblock":
            if binding.is_blocked:
                binding.unblock()
        elif kind == "redirect":
            binding.redirect(servers[step[1]].provided_port("svc"))
    if binding.is_blocked:
        binding.unblock()

    # Conservation: every unit sent landed on exactly one server.
    received = sum(server.state["total"] for server in servers)
    assert received == sent_total
    # Accounting: calls + flushed equals sends (each delivered once).
    assert binding.stats.calls == sum(
        1 for step in schedule if step[0] == "send"
    )


@given(steps)
@settings(max_examples=40, deadline=None)
def test_buffered_calls_flush_to_current_target(schedule):
    """Whatever happened before, calls buffered during a block are
    delivered to the target at unblock time, not the target at send
    time — the semantics that make replace-under-traffic sound."""
    client = Component("client")
    client.require("peer", counter_interface())
    client.activate()
    servers = []
    for index in range(3):
        server = CounterComponent(f"s{index}")
        server.provide("svc", counter_interface())
        server.activate()
        servers.append(server)
    binding = bind(client.required_port("peer"),
                   servers[0].provided_port("svc"))

    # Replay the schedule just to put the binding in an arbitrary state.
    for step in schedule:
        kind = step[0]
        if kind == "send":
            client.required_port("peer").call_async("increment", step[1])
        elif kind == "block" and not binding.is_blocked:
            binding.block()
        elif kind == "unblock" and binding.is_blocked:
            binding.unblock()
        elif kind == "redirect":
            binding.redirect(servers[step[1]].provided_port("svc"))

    # Drain any leftover buffered traffic, then open a fresh window.
    if binding.is_blocked:
        binding.unblock()
    binding.block()
    baseline = {s.name: s.state["total"] for s in servers}
    client.required_port("peer").call_async("increment", 1)
    binding.redirect(servers[2].provided_port("svc"))
    binding.unblock()
    deltas = {s.name: s.state["total"] - baseline[s.name] for s in servers}
    assert deltas["s2"] == 1
    assert deltas["s0"] == 0 and deltas["s1"] == 0

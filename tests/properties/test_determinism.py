"""Determinism properties: identical seeds produce identical runs.

Reproducible evaluation rests on this: every scenario bench assumes two
runs with the same seed interleave identically.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events import PeriodicTimer, Simulator
from repro.netsim import FailureInjector, Message, full_mesh
from repro.workloads import OpenLoopGenerator, binding_transport


@given(st.integers(0, 10_000), st.integers(2, 5), st.floats(0.01, 0.5))
@settings(max_examples=25, deadline=None)
def test_lossy_network_runs_identically_per_seed(seed, size, loss):
    def run():
        sim = Simulator()
        net = full_mesh(sim, size=size, seed=seed)
        for link in net.links.values():
            link.loss = loss
        trace = []
        for name in net.nodes:
            net.node(name).bind_endpoint(
                "svc", lambda node, msg: trace.append(
                    (sim.now, msg.source, msg.destination))
            )
        nodes = sorted(net.nodes)
        for index in range(40):
            src = nodes[index % size]
            dst = nodes[(index + 1) % size]
            sim.at(net.send,
                   Message(src, dst, "svc", size=64), when=index * 0.01)
        sim.run()
        return trace, net.stats.snapshot()

    first = run()
    second = run()
    assert first == second


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_failure_schedules_identical_per_seed(seed):
    def run():
        sim = Simulator()
        net = full_mesh(sim, size=4, seed=0)
        injector = FailureInjector(net, seed=seed)
        injector.random_node_crashes(horizon=50.0, rate=0.2,
                                     recover_after=3.0)
        injector.random_link_flaps(horizon=50.0, rate=0.2, down_for=2.0)
        sim.run()
        return [(e.time, e.kind, e.target) for e in injector.log]

    assert run() == run()


@given(st.integers(0, 10_000), st.floats(10.0, 200.0))
@settings(max_examples=15, deadline=None)
def test_poisson_traffic_identical_per_seed(seed, rate):
    from tests.helpers import CounterComponent, counter_interface
    from repro.kernel import Component, bind

    def run():
        sim = Simulator()
        client = Component("client")
        client.require("peer", counter_interface())
        client.activate()
        server = CounterComponent("server")
        server.provide("svc", counter_interface())
        server.activate()
        bind(client.required_port("peer"), server.provided_port("svc"))
        generator = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "increment", make_args=lambda i: (1,), rate=rate,
            poisson=True, seed=seed,
        )
        generator.start(duration=1.0)
        sim.run()
        return generator.stats.issued, server.state["total"]

    assert run() == run()
